// Package cache is a sharded LRU result cache with in-flight request
// deduplication, the memory behind the vpserve HTTP API. Keys are canonical
// grid identities (sweep.Grid.Key); values are whatever a compute function
// produced for that key.
//
// Do is the single entry point: a cached key returns immediately (hit), a
// key someone else is already computing blocks until that computation
// finishes and shares its value (dedup — a thundering herd on one grid
// computes it once), and otherwise the caller computes, stores and returns
// (miss). Errors are propagated to every coalesced waiter but never cached,
// so a transient failure does not poison the key.
//
// The key space is split across power-of-two shards by FNV-1a hash so
// unrelated keys do not contend on one mutex; eviction is LRU per shard.
package cache

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Cache is a sharded LRU with singleflight-style dedup. The zero value is
// not usable; construct with New.
type Cache[V any] struct {
	shards []*shard[V]
	mask   uint32

	hits      atomic.Int64
	misses    atomic.Int64
	deduped   atomic.Int64
	evictions atomic.Int64
}

// shard is one lock domain: an LRU of cached entries plus the in-flight
// calls currently computing keys that hash here.
type shard[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*call[V]
}

type entry[V any] struct {
	key string
	val V
}

// call is one in-flight computation; waiters block on done. The computation
// runs on its own goroutine with a context detached from any single caller:
// refs counts the callers still interested, and when the last one abandons
// (its own context expired) cancel fires so orphaned work stops. A waiter
// leaving early therefore never poisons the entry — the computation keeps
// running for the remaining waiters and caches normally.
type call[V any] struct {
	done   chan struct{}
	val    V
	err    error
	refs   int // guarded by the owning shard's mu
	cancel context.CancelFunc
}

// DefaultShards is the shard count used by New.
const DefaultShards = 16

// New returns a cache holding up to capacity entries total (minimum one per
// shard). Capacity is distributed evenly across DefaultShards shards, so a
// single hot shard evicts at roughly capacity/DefaultShards entries.
func New[V any](capacity int) *Cache[V] {
	return NewSharded[V](capacity, DefaultShards)
}

// NewSharded is New with an explicit shard count (rounded up to a power of
// two, minimum 1). A single shard makes eviction strictly LRU over the whole
// capacity — useful for tests and tiny caches. The shard capacities always
// sum to exactly the requested capacity: the shard count shrinks for tiny
// caches rather than inflating the operator's memory bound.
func NewSharded[V any](capacity, shards int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	for shards&(shards-1) != 0 {
		shards++
	}
	for shards > capacity {
		shards /= 2
	}
	per, extra := capacity/shards, capacity%shards
	c := &Cache[V]{shards: make([]*shard[V], shards), mask: uint32(shards - 1)}
	for i := range c.shards {
		n := per
		if i < extra {
			n++
		}
		c.shards[i] = &shard[V]{
			capacity: n,
			entries:  make(map[string]*list.Element),
			order:    list.New(),
			inflight: make(map[string]*call[V]),
		}
	}
	return c
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()&c.mask]
}

// Outcome classifies how Do resolved a key.
type Outcome int

const (
	// Hit: the key was cached.
	Hit Outcome = iota
	// Miss: this caller computed the value.
	Miss
	// Deduped: another caller was already computing the key; the value (or
	// error) was shared.
	Deduped
)

// Get returns the cached value without computing, marking the entry used.
// It does not touch the hit/miss counters — Do owns the accounting.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key would resolve without a cold computation:
// either cached or already being computed (a new caller would dedup onto the
// in-flight leader). Unlike Get it does not promote the entry in the LRU and
// touches no counters — it is a pure probe, built for admission control where
// classifying a request must not perturb cache state.
func (c *Cache[V]) Contains(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return true
	}
	_, ok := s.inflight[key]
	return ok
}

// Do returns the value for key, computing it with compute on a miss. Only
// one computation per key runs at a time: concurrent callers of the same key
// block and share the leader's value or error. Errors are never stored.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, Outcome, error) {
	return c.DoCtx(context.Background(), key,
		func(context.Context) (V, error) { return compute() })
}

// DoCtx is Do with per-caller cancellation. The computation receives a
// context that outlives any individual caller: it is cancelled only when
// every caller interested in the key has abandoned it. A caller whose ctx
// expires while waiting gets ctx.Err() immediately, but the in-flight
// computation keeps running for the remaining callers and its result is
// cached normally — an impatient waiter cannot poison the entry for others.
// If all callers leave, the compute context is cancelled and whatever the
// orphaned computation returns is discarded uncached (a context error is
// never stored, like any other error).
func (c *Cache[V]) DoCtx(ctx context.Context, key string, compute func(ctx context.Context) (V, error)) (V, Outcome, error) {
	var zero V
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, Hit, nil
	}
	if cl, ok := s.inflight[key]; ok {
		cl.refs++
		s.mu.Unlock()
		c.deduped.Add(1)
		select {
		case <-cl.done:
			return cl.val, Deduped, cl.err
		case <-ctx.Done():
			s.abandon(key, cl)
			return zero, Deduped, ctx.Err()
		}
	}

	cctx, cancel := context.WithCancel(context.Background())
	cl := &call[V]{done: make(chan struct{}), refs: 1, cancel: cancel}
	s.inflight[key] = cl
	s.mu.Unlock()
	c.misses.Add(1)

	go func() {
		v, err := compute(cctx)
		s.mu.Lock()
		// The call may already have been abandoned (refs hit 0) and removed;
		// only the still-registered call publishes into the cache.
		if s.inflight[key] == cl {
			delete(s.inflight, key)
			if err == nil {
				s.insert(key, v, &c.evictions)
			}
		}
		s.mu.Unlock()
		cl.val, cl.err = v, err
		cancel() // release the context's resources; compute already returned
		close(cl.done)
	}()

	select {
	case <-cl.done:
		return cl.val, Miss, cl.err
	case <-ctx.Done():
		s.abandon(key, cl)
		return zero, Miss, ctx.Err()
	}
}

// abandon drops one caller's interest in an in-flight call. The last caller
// out cancels the computation's context and unregisters the call so a fresh
// Do can recompute the key instead of waiting on doomed work.
func (s *shard[V]) abandon(key string, cl *call[V]) {
	s.mu.Lock()
	cl.refs--
	last := cl.refs == 0 && s.inflight[key] == cl
	if last {
		delete(s.inflight, key)
	}
	s.mu.Unlock()
	if last {
		cl.cancel()
	}
}

// insert stores a value, evicting the least recently used entry past
// capacity. Caller holds s.mu.
func (s *shard[V]) insert(key string, v V, evictions *atomic.Int64) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*entry[V]).val = v
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&entry[V]{key: key, val: v})
	for s.order.Len() > s.capacity {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry[V]).key)
		evictions.Add(1)
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats is a snapshot of the cache counters. Hits+Misses+Deduped is the
// total number of Do calls observed.
type Stats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Deduped   int64 `json:"deduped"`
	Evictions int64 `json:"evictions"`
}

// HitRatePct is hits (including coalesced waiters, which did not recompute)
// over all Do calls, in percent; zero when nothing was looked up.
func (st Stats) HitRatePct() float64 {
	total := st.Hits + st.Misses + st.Deduped
	if total == 0 {
		return 0
	}
	return 100 * float64(st.Hits+st.Deduped) / float64(total)
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Deduped:   c.deduped.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
	for _, s := range c.shards {
		st.Capacity += s.capacity
	}
	return st
}
