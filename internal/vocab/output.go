package vocab

import (
	"fmt"
	"math"

	"vocabpipe/internal/comm"
	"vocabpipe/internal/tensor"
)

// OutputShard is one device's slice of the partitioned output layer: rows
// [Lo, Hi) of the embedding matrix, stored as W [Hi-Lo, h].
type OutputShard struct {
	Rank, P int
	Lo, Hi  int
	W       *tensor.Matrix // [Hi-Lo, h]
	world   *comm.World
}

// NewOutputShard slices the rank's rows out of the full [V, h] matrix.
// fullW is only read; the shard owns a copy so per-device weight updates in
// training do not alias.
func NewOutputShard(world *comm.World, rank int, fullW *tensor.Matrix) *OutputShard {
	p := world.Size()
	lo, hi := ShardRange(fullW.Rows, p, rank)
	return &OutputShard{
		Rank:  rank,
		P:     p,
		Lo:    lo,
		Hi:    hi,
		W:     fullW.SliceRows(lo, hi),
		world: world,
	}
}

// ShardResult is the per-rank outcome of a sharded forward+backward.
type ShardResult struct {
	// Loss is the global summed cross-entropy, identical on every rank.
	Loss float64
	// GradX is the full ∇X [bs, h], identical on every rank (the paper
	// implements the final Reduce as an AllReduce to balance communication
	// volume, §6.1).
	GradX *tensor.Matrix
	// GradW is this rank's ∇W slice, shape [Hi-Lo, h].
	GradW *tensor.Matrix
	// SoftmaxLocal is this rank's softmax slice [bs, Hi-Lo] (the corrected,
	// globally-normalized values).
	SoftmaxLocal *tensor.Matrix
	// Barriers is the number of communication barriers crossed.
	Barriers int
}

// ForwardBackward runs the selected algorithm for inputs X [bs, h] and labels
// (length bs). Every rank must call it collectively with identical X and
// labels (X arrives via the C0 broadcast in the pipeline; the numeric tests
// pass it directly and exercise the broadcast separately).
func (s *OutputShard) ForwardBackward(x *tensor.Matrix, labels []int, alg Algorithm) *ShardResult {
	switch alg {
	case AlgNaive:
		return s.forwardBackwardNaive(x, labels)
	case Alg1:
		return s.forwardBackwardAlg1(x, labels)
	case Alg2:
		return s.forwardBackwardAlg2(x, labels)
	default:
		panic("vocab: unknown algorithm")
	}
}

// localLabelLogit returns, per row, Y[i, g_i] if this shard owns label g_i
// and 0 otherwise; summed across ranks it yields the label logit needed for
// the loss. Piggybacked onto an existing all-reduce (fusing small tensors
// into one collective, as a real implementation would).
func (s *OutputShard) localLabelLogit(y *tensor.Matrix, labels []int) []float64 {
	out := make([]float64, len(labels))
	for i, g := range labels {
		if g >= s.Lo && g < s.Hi {
			out[i] = y.At(i, g-s.Lo)
		}
	}
	return out
}

// subtractLocalG subtracts the one-hot ground truth for labels owned by this
// shard from m in place (m has shape [bs, Hi-Lo]).
func (s *OutputShard) subtractLocalG(m *tensor.Matrix, labels []int) {
	for i, g := range labels {
		if g >= s.Lo && g < s.Hi {
			m.Set(i, g-s.Lo, m.At(i, g-s.Lo)-1)
		}
	}
}

// lossFrom computes the summed cross-entropy from global max, global sum and
// the (summed) label logits.
func lossFrom(mx, sum, labelLogit []float64) float64 {
	loss := 0.0
	for i := range mx {
		loss += mx[i] + math.Log(sum[i]) - labelLogit[i]
	}
	return loss
}

// forwardBackwardNaive is the direct implementation of Fig 4: three
// computation passes F1/F2/B separated by three communication barriers.
func (s *OutputShard) forwardBackwardNaive(x *tensor.Matrix, labels []int) *ShardResult {
	bs := x.Rows

	// F1: local logits and local max.
	y := tensor.MatMulT(x, s.W) // [bs, V/p]
	mx := y.RowMax()

	// Barrier 1: all-reduce max of logits.
	s.world.AllReduce(s.Rank, mx, comm.OpMax)

	// F2: exponentials against the *global* max, local sum.
	e := y.ExpShifted(mx)
	sumAndLogit := make([]float64, 2*bs)
	for i := 0; i < bs; i++ {
		row := e.Row(i)
		acc := 0.0
		for _, v := range row {
			acc += v
		}
		sumAndLogit[i] = acc
	}
	copy(sumAndLogit[bs:], s.localLabelLogit(y, labels))

	// Barrier 2: all-reduce sum of logit exponents (label logit fused in).
	s.world.AllReduce(s.Rank, sumAndLogit, comm.OpSum)
	sum := sumAndLogit[:bs]
	loss := lossFrom(mx, sum, sumAndLogit[bs:])

	// Divide: softmax = e / sum.
	sm := e
	for i := 0; i < bs; i++ {
		inv := 1.0 / sum[i]
		row := sm.Row(i)
		for j := range row {
			row[j] *= inv
		}
	}

	// B: dY = softmax − G_local; ∇X' = dY·W ; ∇W = dYᵀ·X.
	dy := sm.Clone()
	s.subtractLocalG(dy, labels)
	gradX := tensor.MatMul(dy, s.W)
	gradW := tensor.TMatMul(dy, x)

	// Barrier 3: reduce ∇X (implemented as all-reduce, §6.1).
	s.world.ReduceAsAllReduce(s.Rank, gradX.Data, comm.OpSum)

	return &ShardResult{Loss: loss, GradX: gradX, GradW: gradW, SoftmaxLocal: sm, Barriers: 3}
}

// forwardBackwardAlg1 implements Algorithm 1: the S pass computes a local
// softmax from local max/sum; barrier C1 fixes it up with two [bs]-sized
// all-reduces; the T pass computes both matmul gradients; barrier C2 reduces
// ∇X.
func (s *OutputShard) forwardBackwardAlg1(x *tensor.Matrix, labels []int) *ShardResult {
	bs := x.Rows

	// S: everything local — logits, local max/sum, local softmax'.
	y := tensor.MatMulT(x, s.W)
	mLocal := y.RowMax()
	sumLocal := y.RowSumExp(mLocal)
	smLocal := y.ExpShifted(mLocal)
	for i := 0; i < bs; i++ {
		inv := 1.0 / sumLocal[i]
		if sumLocal[i] == 0 { // empty shard rows: keep zeros
			inv = 0
		}
		row := smLocal.Row(i)
		for j := range row {
			row[j] *= inv
		}
	}

	// C1, step 1: global max.
	m := append([]float64(nil), mLocal...)
	s.world.AllReduce(s.Rank, m, comm.OpMax)

	// C1, step 2: rescale local sums into the global frame, all-reduce
	// (label logit fused into the same collective).
	sumScaled := make([]float64, bs)
	for i := 0; i < bs; i++ {
		sumScaled[i] = sumLocal[i] * math.Exp(mLocal[i]-m[i])
	}
	sumAndLogit := make([]float64, 2*bs)
	copy(sumAndLogit, sumScaled)
	copy(sumAndLogit[bs:], s.localLabelLogit(y, labels))
	s.world.AllReduce(s.Rank, sumAndLogit, comm.OpSum)
	sum := sumAndLogit[:bs]
	loss := lossFrom(m, sum, sumAndLogit[bs:])

	// T: correct the local softmax (eq. 5) and compute both gradients.
	ratio := make([]float64, bs)
	for i := 0; i < bs; i++ {
		ratio[i] = sumScaled[i] / sum[i]
	}
	sm := smLocal.ScaleRows(ratio)
	dy := sm.Clone()
	s.subtractLocalG(dy, labels)
	gradX := tensor.MatMul(dy, s.W)
	gradW := tensor.TMatMul(dy, x)

	// C2: reduce ∇X.
	s.world.ReduceAsAllReduce(s.Rank, gradX.Data, comm.OpSum)

	return &ShardResult{Loss: loss, GradX: gradX, GradW: gradW, SoftmaxLocal: sm, Barriers: 2}
}

// forwardBackwardAlg2 implements Algorithm 2: the S pass additionally
// computes A = softmax'(Y)·W and B = G·W, so the single barrier C1 assembles
// ∇X from [bs, h]-sized pieces with only elementwise work (eq. 6). The weight
// gradient pass T is independent and can be delayed arbitrarily; here it runs
// immediately after the barrier, but the pipeline scheduler exploits the
// freedom (§5.1).
func (s *OutputShard) forwardBackwardAlg2(x *tensor.Matrix, labels []int) *ShardResult {
	bs := x.Rows

	// S: local logits, local softmax', and both pre-barrier matmuls.
	y := tensor.MatMulT(x, s.W)
	mLocal := y.RowMax()
	sumLocal := y.RowSumExp(mLocal)
	smLocal := y.ExpShifted(mLocal)
	for i := 0; i < bs; i++ {
		inv := 1.0 / sumLocal[i]
		if sumLocal[i] == 0 {
			inv = 0
		}
		row := smLocal.Row(i)
		for j := range row {
			row[j] *= inv
		}
	}
	a := tensor.MatMul(smLocal, s.W) // softmax'(Y)·W, [bs, h]
	g := tensor.New(bs, s.Hi-s.Lo)
	for i, lbl := range labels {
		if lbl >= s.Lo && lbl < s.Hi {
			g.Set(i, lbl-s.Lo, 1)
		}
	}
	b := tensor.MatMul(g, s.W) // G·W, [bs, h]

	// C1: global max, rescaled sum (+fused label logit), then ∇X assembly —
	// all inside the single barrier, with only [bs] and [bs,h] elementwise
	// arithmetic between the collectives.
	m := append([]float64(nil), mLocal...)
	s.world.AllReduce(s.Rank, m, comm.OpMax)
	sumScaled := make([]float64, bs)
	for i := 0; i < bs; i++ {
		sumScaled[i] = sumLocal[i] * math.Exp(mLocal[i]-m[i])
	}
	sumAndLogit := make([]float64, 2*bs)
	copy(sumAndLogit, sumScaled)
	copy(sumAndLogit[bs:], s.localLabelLogit(y, labels))
	s.world.AllReduce(s.Rank, sumAndLogit, comm.OpSum)
	sum := sumAndLogit[:bs]
	loss := lossFrom(m, sum, sumAndLogit[bs:])

	ratio := make([]float64, bs)
	for i := 0; i < bs; i++ {
		ratio[i] = sumScaled[i] / sum[i]
	}
	gradX := a.ScaleRows(ratio).Sub(b)
	s.world.ReduceAsAllReduce(s.Rank, gradX.Data, comm.OpSum)

	// T (delayable): corrected softmax and the weight gradient.
	sm := smLocal.ScaleRows(ratio)
	dy := sm.Clone()
	s.subtractLocalG(dy, labels)
	gradW := tensor.TMatMul(dy, x)

	return &ShardResult{Loss: loss, GradX: gradX, GradW: gradW, SoftmaxLocal: sm, Barriers: 1}
}

// RunSharded is a convenience driver: it shards fullW [V, h] across p ranks,
// runs alg collectively on every rank (including the C0 broadcast of X from
// the root rank), and reassembles the global result. It also reports the
// communication volume observed.
func RunSharded(fullW, x *tensor.Matrix, labels []int, p int, alg Algorithm) (*Result, int64) {
	if fullW.Rows%p != 0 {
		panic(fmt.Sprintf("vocab: V=%d not divisible by p=%d", fullW.Rows, p))
	}
	world := comm.NewWorld(p)
	bs, h := x.Rows, x.Cols
	results := make([]*ShardResult, p)
	world.Run(func(rank int) {
		shard := NewOutputShard(world, rank, fullW)
		// C0: broadcast X from the device that produced the last transformer
		// layer output (by convention the last rank).
		xr := tensor.New(bs, h)
		if rank == p-1 {
			xr.CopyFrom(x)
		}
		world.Broadcast(rank, p-1, xr.Data)
		results[rank] = shard.ForwardBackward(xr, labels, alg)
	})

	out := &Result{
		Loss:    results[0].Loss,
		GradX:   results[0].GradX,
		GradW:   tensor.New(fullW.Rows, h),
		Softmax: tensor.New(bs, fullW.Rows),
	}
	per := fullW.Rows / p
	for r := 0; r < p; r++ {
		res := results[r]
		copy(out.GradW.Data[r*per*h:(r+1)*per*h], res.GradW.Data)
		for i := 0; i < bs; i++ {
			copy(out.Softmax.Row(i)[r*per:(r+1)*per], res.SoftmaxLocal.Row(i))
		}
	}
	return out, world.BytesMoved()
}
