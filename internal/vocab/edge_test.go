package vocab

import (
	"math"
	"testing"

	"vocabpipe/internal/tensor"
)

// Edge cases and failure-injection for the sharded output layer: degenerate
// shapes, pathological label distributions, and shard-boundary conditions.

func TestShardedSingleTokenBatch(t *testing.T) {
	w, x, labels := makeCase(1, 1, 4, 8)
	want := NewReference(w).ForwardBackward(x, labels)
	for _, alg := range allAlgorithms() {
		got, _ := RunSharded(w, x, labels, 4, alg)
		if math.Abs(got.Loss-want.Loss) > 1e-10 {
			t.Errorf("%v: bs=1 loss %v vs %v", alg, got.Loss, want.Loss)
		}
	}
}

func TestShardedHiddenDimOne(t *testing.T) {
	w, x, labels := makeCase(2, 3, 1, 6)
	want := NewReference(w).ForwardBackward(x, labels)
	for _, alg := range allAlgorithms() {
		got, _ := RunSharded(w, x, labels, 2, alg)
		if d := got.GradX.MaxAbsDiff(want.GradX); d > 1e-10 {
			t.Errorf("%v: h=1 gradX differs by %g", alg, d)
		}
	}
}

func TestShardedOneRowPerShard(t *testing.T) {
	// V == p: each shard owns exactly one vocabulary row; local softmax' of a
	// single column is identically 1, stressing the correction formula.
	w, x, labels := makeCase(3, 4, 5, 4)
	want := NewReference(w).ForwardBackward(x, labels)
	for _, alg := range allAlgorithms() {
		got, _ := RunSharded(w, x, labels, 4, alg)
		if math.Abs(got.Loss-want.Loss) > 1e-10 {
			t.Errorf("%v: V=p loss %v vs %v", alg, got.Loss, want.Loss)
		}
		if d := got.GradW.MaxAbsDiff(want.GradW); d > 1e-10 {
			t.Errorf("%v: V=p gradW differs by %g", alg, d)
		}
	}
}

func TestShardedAllLabelsInOneShard(t *testing.T) {
	// Every label owned by shard 2: other shards contribute zero label logits
	// and no G rows, exercising the piggyback reduction's zero paths.
	rng := tensor.NewRNG(99)
	w := tensor.Randn(rng, 16, 4, 0.5)
	x := tensor.Randn(rng, 5, 4, 1)
	labels := []int{8, 9, 10, 11, 8} // all in shard 2 of 4 (rows 8..11)
	want := NewReference(w).ForwardBackward(x, labels)
	for _, alg := range allAlgorithms() {
		got, _ := RunSharded(w, x, labels, 4, alg)
		if math.Abs(got.Loss-want.Loss) > 1e-10 {
			t.Errorf("%v: concentrated labels loss %v vs %v", alg, got.Loss, want.Loss)
		}
	}
}

func TestShardedRepeatedLabels(t *testing.T) {
	// The same label for every token: ∇W of that row accumulates bs entries.
	w, x, _ := makeCase(4, 6, 4, 8)
	labels := []int{3, 3, 3, 3, 3, 3}
	want := NewReference(w).ForwardBackward(x, labels)
	got, _ := RunSharded(w, x, labels, 2, Alg2)
	if d := got.GradW.MaxAbsDiff(want.GradW); d > 1e-10 {
		t.Errorf("repeated labels gradW differs by %g", d)
	}
}

func TestShardedZeroInput(t *testing.T) {
	// X = 0 ⇒ uniform logits ⇒ loss = bs·ln(V) and ∇W rows follow softmax 1/V.
	rng := tensor.NewRNG(5)
	w := tensor.Randn(rng, 12, 3, 1)
	x := tensor.New(4, 3)
	labels := []int{0, 5, 7, 11}
	for _, alg := range allAlgorithms() {
		got, _ := RunSharded(w, x, labels, 3, alg)
		want := 4 * math.Log(12)
		if math.Abs(got.Loss-want) > 1e-10 {
			t.Errorf("%v: zero-input loss %v, want %v", alg, got.Loss, want)
		}
	}
}

func TestShardedHugeNegativeLogitsOneShard(t *testing.T) {
	// One shard's weights drive its logits to -200·‖x‖; its exp terms must
	// vanish without destabilizing the global softmax.
	rng := tensor.NewRNG(6)
	w := tensor.Randn(rng, 8, 4, 1)
	for j := 0; j < 4; j++ {
		w.Set(4, j, -200)
		w.Set(5, j, -200)
	}
	x := tensor.Randn(rng, 3, 4, 1)
	labels := []int{0, 1, 7}
	want := NewReference(w).ForwardBackward(x, labels)
	for _, alg := range allAlgorithms() {
		got, _ := RunSharded(w, x, labels, 4, alg)
		if math.IsNaN(got.Loss) {
			t.Fatalf("%v: NaN loss", alg)
		}
		if math.Abs(got.Loss-want.Loss) > 1e-9*(1+math.Abs(want.Loss)) {
			t.Errorf("%v: loss %v vs %v", alg, got.Loss, want.Loss)
		}
	}
}

func TestInputShardAllTokensOneShard(t *testing.T) {
	rng := tensor.NewRNG(7)
	fullW := tensor.Randn(rng, 8, 3, 1)
	tokens := []int{6, 7, 6}
	dOut := tensor.Randn(rng, 3, 3, 1)
	ref := &ReferenceInput{W: fullW}
	wantFwd := ref.Forward(tokens)
	wantGW, _ := ref.Backward(tokens, dOut)
	fwd, gw, _ := runInputSharded(fullW, nil, tokens, dOut, 4)
	if d := fwd.MaxAbsDiff(wantFwd); d > 1e-12 {
		t.Fatalf("forward differs by %g", d)
	}
	if d := gw.MaxAbsDiff(wantGW); d > 1e-12 {
		t.Fatalf("gradW differs by %g", d)
	}
}

func TestPadVocabProperty(t *testing.T) {
	for v := 1; v < 200; v += 7 {
		for p := 1; p <= 32; p *= 2 {
			padded := PadVocab(v, p)
			if padded < v {
				t.Fatalf("PadVocab(%d,%d) = %d shrank", v, p, padded)
			}
			if padded%(2*p) != 0 {
				t.Fatalf("PadVocab(%d,%d) = %d not multiple of 2p", v, p, padded)
			}
			if padded-v >= 2*p {
				t.Fatalf("PadVocab(%d,%d) = %d overshoots", v, p, padded)
			}
		}
	}
}
