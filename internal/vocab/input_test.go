package vocab

import (
	"testing"

	"vocabpipe/internal/comm"
	"vocabpipe/internal/tensor"
)

func runInputSharded(fullW, pos *tensor.Matrix, tokens []int, dOut *tensor.Matrix, p int) (fwd *tensor.Matrix, gradW, gradPos *tensor.Matrix) {
	world := comm.NewWorld(p)
	fwds := make([]*tensor.Matrix, p)
	gradWs := make([]*tensor.Matrix, p)
	var gp *tensor.Matrix
	world.Run(func(rank int) {
		s := NewInputShard(world, rank, fullW, pos)
		fwds[rank] = s.Forward(tokens)
		gw, gpos := s.Backward(tokens, dOut)
		gradWs[rank] = gw
		if rank == 0 {
			gp = gpos
		}
	})
	// Reassemble the weight gradient.
	gradW = tensor.New(fullW.Rows, fullW.Cols)
	per := fullW.Rows / p
	for r := 0; r < p; r++ {
		copy(gradW.Data[r*per*fullW.Cols:(r+1)*per*fullW.Cols], gradWs[r].Data)
	}
	// All ranks' forward outputs must be identical; return rank 0's and check.
	for r := 1; r < p; r++ {
		if fwds[r].MaxAbsDiff(fwds[0]) != 0 {
			panic("input forward differs across ranks")
		}
	}
	return fwds[0], gradW, gp
}

func TestInputShardedMatchesReference(t *testing.T) {
	rng := tensor.NewRNG(1)
	v, h, seq := 24, 6, 10
	fullW := tensor.Randn(rng, v, h, 1)
	pos := tensor.Randn(rng, seq, h, 0.2)
	tokens := tensor.RandTokens(rng, seq, v)
	dOut := tensor.Randn(rng, seq, h, 1)

	ref := &ReferenceInput{W: fullW, Pos: pos}
	wantFwd := ref.Forward(tokens)
	wantGW, wantGP := ref.Backward(tokens, dOut)

	for _, p := range []int{1, 2, 4, 8} {
		fwd, gw, gp := runInputSharded(fullW, pos, tokens, dOut, p)
		if d := fwd.MaxAbsDiff(wantFwd); d > 1e-12 {
			t.Errorf("p=%d: forward differs by %g", p, d)
		}
		if d := gw.MaxAbsDiff(wantGW); d > 1e-12 {
			t.Errorf("p=%d: gradW differs by %g", p, d)
		}
		if d := gp.MaxAbsDiff(wantGP); d > 1e-12 {
			t.Errorf("p=%d: gradPos differs by %g", p, d)
		}
	}
}

func TestInputShardNoPositionEmbedding(t *testing.T) {
	rng := tensor.NewRNG(2)
	v, h, seq := 8, 4, 5
	fullW := tensor.Randn(rng, v, h, 1)
	tokens := tensor.RandTokens(rng, seq, v)
	dOut := tensor.Randn(rng, seq, h, 1)
	ref := &ReferenceInput{W: fullW}
	wantFwd := ref.Forward(tokens)
	wantGW, _ := ref.Backward(tokens, dOut)
	fwd, gw, gp := runInputSharded(fullW, nil, tokens, dOut, 2)
	if d := fwd.MaxAbsDiff(wantFwd); d > 1e-12 {
		t.Fatalf("forward differs by %g", d)
	}
	if d := gw.MaxAbsDiff(wantGW); d > 1e-12 {
		t.Fatalf("gradW differs by %g", d)
	}
	if gp != nil {
		t.Fatalf("gradPos should be nil without position embedding")
	}
}

func TestInputShardRepeatedTokensAccumulate(t *testing.T) {
	// The same token appearing twice must receive the sum of both gradient
	// rows (scatter-add, not overwrite).
	rng := tensor.NewRNG(3)
	fullW := tensor.Randn(rng, 4, 3, 1)
	tokens := []int{1, 1, 1}
	dOut := tensor.FromSlice(3, 3, []float64{1, 0, 0, 0, 1, 0, 0, 0, 1})
	_, gw, _ := runInputSharded(fullW, nil, tokens, dOut, 2)
	want := []float64{1, 1, 1}
	for j, v := range want {
		if gw.At(1, j) != v {
			t.Fatalf("gradW row 1 = %v, want %v", gw.Row(1), want)
		}
	}
	// All other rows must be zero.
	for i := 0; i < 4; i++ {
		if i == 1 {
			continue
		}
		for j := 0; j < 3; j++ {
			if gw.At(i, j) != 0 {
				t.Fatalf("gradW row %d should be zero", i)
			}
		}
	}
}

func TestInputShardOnlyRankZeroHasPos(t *testing.T) {
	rng := tensor.NewRNG(4)
	fullW := tensor.Randn(rng, 8, 4, 1)
	pos := tensor.Randn(rng, 6, 4, 1)
	world := comm.NewWorld(4)
	world.Run(func(rank int) {
		s := NewInputShard(world, rank, fullW, pos)
		if rank == 0 && s.Pos == nil {
			t.Errorf("rank 0 must hold the position embedding")
		}
		if rank != 0 && s.Pos != nil {
			t.Errorf("rank %d must not hold the position embedding", rank)
		}
		// Everyone must still participate in forward's all-reduce.
		s.Forward([]int{0, 1, 2})
	})
}

func TestInputBackwardPanicsOnShapeMismatch(t *testing.T) {
	rng := tensor.NewRNG(5)
	fullW := tensor.Randn(rng, 4, 2, 1)
	world := comm.NewWorld(1)
	world.Run(func(rank int) {
		s := NewInputShard(world, rank, fullW, nil)
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic on shape mismatch")
			}
		}()
		s.Backward([]int{0, 1}, tensor.New(3, 2))
	})
}
