// Package vocab implements the paper's primary contribution: the output and
// input vocabulary layers partitioned across the vocabulary dimension over
// all pipeline devices (§3–§4 and Appendix C of "Balancing Pipeline
// Parallelism with Vocabulary Parallelism", MLSys 2025).
//
// Three output-layer variants are provided, differing in the number of
// cross-device communication barriers per microbatch:
//
//   - AlgNaive — 3 barriers (Fig 4/6): all-reduce max, all-reduce sum,
//     reduce of ∇X, each splitting the computation into F1/F2/B passes.
//   - Alg1 — 2 barriers (§4.3, Algorithm 1): online-softmax-style reordering
//     moves both logit reductions after the local softmax into one barrier C1;
//     the ∇X reduce remains as C2.
//   - Alg2 — 1 barrier (§4.4, Algorithm 2): the input-gradient matmuls are
//     also computed locally before the barrier, so ∇X is assembled inside C1
//     with only lightweight [bs,h] arithmetic; the weight-gradient pass T can
//     be delayed arbitrarily (zero-bubble style).
//
// All variants produce losses and gradients identical (to float64 rounding)
// to the unpartitioned Reference layer; the tests assert this and also check
// gradients against finite differences.
//
// Cross-entropy convention: the loss is the SUM over the b·s tokens of
// -log softmax(Y)[i, label_i], matching the paper's equations (3)–(4) where
// ∇Y = softmax(Y) − G. Callers wanting a mean loss scale by 1/(b·s).
package vocab

import (
	"fmt"
	"math"

	"vocabpipe/internal/tensor"
)

// Algorithm selects the output-layer variant.
type Algorithm int

const (
	// AlgNaive is the direct partitioning with 3 communication barriers.
	AlgNaive Algorithm = iota
	// Alg1 applies the forward-phase optimization (2 barriers).
	Alg1
	// Alg2 additionally applies the backward-phase optimization (1 barrier).
	Alg2
)

func (a Algorithm) String() string {
	switch a {
	case AlgNaive:
		return "naive"
	case Alg1:
		return "vocab-1"
	case Alg2:
		return "vocab-2"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Barriers returns the number of communication barriers the variant places
// between the forward and backward pass of the last transformer layer. This
// equals the activation-memory overhead in microbatches when integrated into
// a pipeline schedule (§5.2).
func (a Algorithm) Barriers() int {
	switch a {
	case AlgNaive:
		return 3
	case Alg1:
		return 2
	case Alg2:
		return 1
	default:
		panic("vocab: unknown algorithm")
	}
}

// PadVocab rounds V up to a multiple of 2p for memory alignment, as §6.1
// recommends (e.g. 256008 → 256032 on 24 devices).
func PadVocab(v, p int) int {
	if v <= 0 || p <= 0 {
		panic("vocab: PadVocab requires positive arguments")
	}
	unit := 2 * p
	return (v + unit - 1) / unit * unit
}

// ShardRange returns the half-open row range [lo, hi) of the vocabulary owned
// by rank out of p devices. V must be divisible by p (callers pad first).
func ShardRange(v, p, rank int) (lo, hi int) {
	if v%p != 0 {
		panic(fmt.Sprintf("vocab: V=%d not divisible by p=%d (pad first)", v, p))
	}
	per := v / p
	return rank * per, (rank + 1) * per
}

// Result carries the outputs of a full forward+backward through the output
// layer.
type Result struct {
	// Loss is the summed cross-entropy over all tokens.
	Loss float64
	// GradX is ∇X = (softmax(Y) − G)·W, shape [bs, h].
	GradX *tensor.Matrix
	// GradW is ∇W = (softmax(Y) − G)ᵀ·X. For sharded runs this is the
	// reassembled [V, h] gradient; each rank computes only its own rows.
	GradW *tensor.Matrix
	// Softmax is the full softmax(Y), shape [bs, V]; reassembled for sharded
	// runs. Retained for test comparison; production kernels would not
	// materialize it globally.
	Softmax *tensor.Matrix
}

// Reference is the unpartitioned output layer: logits Y = X·Wᵀ with W of
// shape [V, h], safe softmax, cross-entropy against integer labels.
type Reference struct {
	W *tensor.Matrix // [V, h]
}

// NewReference wraps an embedding matrix W of shape [V, h].
func NewReference(w *tensor.Matrix) *Reference { return &Reference{W: w} }

// ForwardBackward computes loss, ∇X and ∇W for inputs X [bs, h] and labels
// (length bs, values in [0, V)).
func (r *Reference) ForwardBackward(x *tensor.Matrix, labels []int) *Result {
	bs := x.Rows
	if len(labels) != bs {
		panic(fmt.Sprintf("vocab: %d labels for %d rows", len(labels), bs))
	}
	y := tensor.MatMulT(x, r.W) // [bs, V]
	mx := y.RowMax()
	sum := y.RowSumExp(mx)
	sm := y.ExpShifted(mx)
	loss := 0.0
	for i := 0; i < bs; i++ {
		g := labels[i]
		if g < 0 || g >= r.W.Rows {
			panic(fmt.Sprintf("vocab: label %d out of range [0,%d)", g, r.W.Rows))
		}
		loss += mx[i] + math.Log(sum[i]) - y.At(i, g)
		inv := 1.0 / sum[i]
		row := sm.Row(i)
		for j := range row {
			row[j] *= inv
		}
	}
	// dY = softmax − G
	dy := sm.Clone()
	for i := 0; i < bs; i++ {
		dy.Set(i, labels[i], dy.At(i, labels[i])-1)
	}
	gradX := tensor.MatMul(dy, r.W) // [bs, h]
	gradW := tensor.TMatMul(dy, x)  // [V, h]
	return &Result{Loss: loss, GradX: gradX, GradW: gradW, Softmax: sm}
}
