package vocab

import (
	"math"
	"testing"
	"testing/quick"

	"vocabpipe/internal/tensor"
)

// makeCase builds a random output-layer problem: W [V,h], X [bs,h], labels.
func makeCase(seed uint64, bs, h, v int) (*tensor.Matrix, *tensor.Matrix, []int) {
	rng := tensor.NewRNG(seed)
	w := tensor.Randn(rng, v, h, 0.5)
	x := tensor.Randn(rng, bs, h, 1.0)
	labels := tensor.RandTokens(rng, bs, v)
	return w, x, labels
}

func allAlgorithms() []Algorithm { return []Algorithm{AlgNaive, Alg1, Alg2} }

func TestAlgorithmString(t *testing.T) {
	if AlgNaive.String() != "naive" || Alg1.String() != "vocab-1" || Alg2.String() != "vocab-2" {
		t.Fatalf("Algorithm String wrong")
	}
}

func TestBarrierCounts(t *testing.T) {
	if AlgNaive.Barriers() != 3 || Alg1.Barriers() != 2 || Alg2.Barriers() != 1 {
		t.Fatalf("barrier counts must be 3/2/1 (paper §4)")
	}
}

func TestPadVocab(t *testing.T) {
	// §6.1: 256008 on 24 devices pads to 256032 (multiple of 48).
	if got := PadVocab(256008, 24); got != 256032 {
		t.Fatalf("PadVocab(256008, 24) = %d, want 256032", got)
	}
	if got := PadVocab(48, 24); got != 48 {
		t.Fatalf("PadVocab exact multiple changed: %d", got)
	}
	if got := PadVocab(1, 4); got != 8 {
		t.Fatalf("PadVocab(1,4) = %d, want 8", got)
	}
}

func TestShardRangeCoversVocab(t *testing.T) {
	v, p := 64, 8
	covered := make([]bool, v)
	for r := 0; r < p; r++ {
		lo, hi := ShardRange(v, p, r)
		if hi-lo != v/p {
			t.Fatalf("shard %d has %d rows, want %d", r, hi-lo, v/p)
		}
		for i := lo; i < hi; i++ {
			if covered[i] {
				t.Fatalf("row %d covered twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("row %d not covered", i)
		}
	}
}

func TestReferenceLossMatchesManual(t *testing.T) {
	// Tiny case computed by hand: V=2, h=1, W = [[1],[−1]], x=[2], label 0.
	w := tensor.FromSlice(2, 1, []float64{1, -1})
	x := tensor.FromSlice(1, 1, []float64{2})
	res := NewReference(w).ForwardBackward(x, []int{0})
	// logits = [2, −2]; loss = log(e^2+e^−2) − 2 = log(1+e^−4)
	want := math.Log(1 + math.Exp(-4))
	if math.Abs(res.Loss-want) > 1e-12 {
		t.Fatalf("loss = %v, want %v", res.Loss, want)
	}
	// softmax = [σ, 1−σ] with σ = 1/(1+e^−4); dY = [σ−1, 1−σ]
	sig := 1 / (1 + math.Exp(-4))
	gx := (sig-1)*1 + (1-sig)*(-1)
	if math.Abs(res.GradX.At(0, 0)-gx) > 1e-12 {
		t.Fatalf("gradX = %v, want %v", res.GradX.At(0, 0), gx)
	}
}

func TestReferenceGradXFiniteDifference(t *testing.T) {
	w, x, labels := makeCase(11, 3, 5, 8)
	ref := NewReference(w)
	res := ref.ForwardBackward(x, labels)
	const h = 1e-6
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			orig := x.At(i, j)
			x.Set(i, j, orig+h)
			lp := ref.ForwardBackward(x, labels).Loss
			x.Set(i, j, orig-h)
			lm := ref.ForwardBackward(x, labels).Loss
			x.Set(i, j, orig)
			fd := (lp - lm) / (2 * h)
			if math.Abs(fd-res.GradX.At(i, j)) > 1e-5 {
				t.Fatalf("gradX[%d][%d] = %v, finite diff %v", i, j, res.GradX.At(i, j), fd)
			}
		}
	}
}

func TestReferenceGradWFiniteDifference(t *testing.T) {
	w, x, labels := makeCase(12, 2, 4, 6)
	ref := NewReference(w)
	res := ref.ForwardBackward(x, labels)
	const h = 1e-6
	for i := 0; i < w.Rows; i += 2 {
		for j := 0; j < w.Cols; j++ {
			orig := w.At(i, j)
			w.Set(i, j, orig+h)
			lp := ref.ForwardBackward(x, labels).Loss
			w.Set(i, j, orig-h)
			lm := ref.ForwardBackward(x, labels).Loss
			w.Set(i, j, orig)
			fd := (lp - lm) / (2 * h)
			if math.Abs(fd-res.GradW.At(i, j)) > 1e-5 {
				t.Fatalf("gradW[%d][%d] = %v, finite diff %v", i, j, res.GradW.At(i, j), fd)
			}
		}
	}
}

// TestShardedMatchesReference is the core correctness claim (Appendix E):
// every partitioned variant must reproduce the unpartitioned layer.
func TestShardedMatchesReference(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		w, x, labels := makeCase(uint64(100+p), 6, 16, 8*p)
		want := NewReference(w).ForwardBackward(x, labels)
		for _, alg := range allAlgorithms() {
			got, _ := RunSharded(w, x, labels, p, alg)
			if math.Abs(got.Loss-want.Loss) > 1e-9 {
				t.Errorf("p=%d %v: loss %v vs reference %v", p, alg, got.Loss, want.Loss)
			}
			if d := got.GradX.MaxAbsDiff(want.GradX); d > 1e-9 {
				t.Errorf("p=%d %v: gradX differs by %g", p, alg, d)
			}
			if d := got.GradW.MaxAbsDiff(want.GradW); d > 1e-9 {
				t.Errorf("p=%d %v: gradW differs by %g", p, alg, d)
			}
			if d := got.Softmax.MaxAbsDiff(want.Softmax); d > 1e-12 {
				t.Errorf("p=%d %v: softmax differs by %g", p, alg, d)
			}
		}
	}
}

func TestShardedVariantsAgreeExactly(t *testing.T) {
	// All three variants see the same shard data; Alg1 and Naive perform the
	// same matmuls in the same order, so they should agree very tightly.
	w, x, labels := makeCase(200, 4, 8, 32)
	naive, _ := RunSharded(w, x, labels, 4, AlgNaive)
	a1, _ := RunSharded(w, x, labels, 4, Alg1)
	a2, _ := RunSharded(w, x, labels, 4, Alg2)
	if d := naive.GradX.MaxAbsDiff(a1.GradX); d > 1e-10 {
		t.Errorf("naive vs alg1 gradX differ by %g", d)
	}
	if d := a1.GradX.MaxAbsDiff(a2.GradX); d > 1e-10 {
		t.Errorf("alg1 vs alg2 gradX differ by %g", d)
	}
	if math.Abs(a1.Loss-a2.Loss) > 1e-10 {
		t.Errorf("alg1 vs alg2 loss differ: %v vs %v", a1.Loss, a2.Loss)
	}
}

func TestShardedDeterministicAcrossRuns(t *testing.T) {
	w, x, labels := makeCase(300, 5, 12, 24)
	first, _ := RunSharded(w, x, labels, 4, Alg2)
	for i := 0; i < 5; i++ {
		again, _ := RunSharded(w, x, labels, 4, Alg2)
		if again.Loss != first.Loss {
			t.Fatalf("run %d: loss changed: %v vs %v", i, again.Loss, first.Loss)
		}
		if d := again.GradW.MaxAbsDiff(first.GradW); d != 0 {
			t.Fatalf("run %d: gradW not bit-identical (%g)", i, d)
		}
	}
}

func TestShardedLargeLogitsStable(t *testing.T) {
	// Safe-softmax must survive extreme logits on only one shard.
	rng := tensor.NewRNG(400)
	w := tensor.Randn(rng, 16, 4, 1)
	// Blow up shard 2's weights so the global max lives there.
	for i := 8; i < 12; i++ {
		for j := 0; j < 4; j++ {
			w.Set(i, j, w.At(i, j)*200)
		}
	}
	x := tensor.Randn(rng, 3, 4, 1)
	labels := []int{0, 9, 15}
	want := NewReference(w).ForwardBackward(x, labels)
	for _, alg := range allAlgorithms() {
		got, _ := RunSharded(w, x, labels, 4, alg)
		if math.IsNaN(got.Loss) || math.IsInf(got.Loss, 0) {
			t.Fatalf("%v: loss not finite: %v", alg, got.Loss)
		}
		if math.Abs(got.Loss-want.Loss) > 1e-9*math.Abs(want.Loss) {
			t.Fatalf("%v: loss %v vs %v", alg, got.Loss, want.Loss)
		}
	}
}

func TestShardedSoftmaxRowsSumToOne(t *testing.T) {
	w, x, labels := makeCase(500, 7, 10, 40)
	for _, alg := range allAlgorithms() {
		res, _ := RunSharded(w, x, labels, 8, alg)
		for i := 0; i < res.Softmax.Rows; i++ {
			s := 0.0
			for _, v := range res.Softmax.Row(i) {
				s += v
			}
			if math.Abs(s-1) > 1e-10 {
				t.Fatalf("%v: softmax row %d sums to %v", alg, i, s)
			}
		}
	}
}

func TestCommunicationVolumeOrdering(t *testing.T) {
	// The optimizations trade barrier count, not bytes: Alg2 still moves the
	// same [bs,h] reduce plus [bs] reductions. What must strictly shrink is
	// the number of collectives blocked on (barriers). Verify bytes are of
	// the same order while barrier counts drop 3→2→1.
	w, x, labels := makeCase(600, 8, 16, 32)
	_, bytesNaive := RunSharded(w, x, labels, 4, AlgNaive)
	_, bytes1 := RunSharded(w, x, labels, 4, Alg1)
	_, bytes2 := RunSharded(w, x, labels, 4, Alg2)
	if bytesNaive <= 0 || bytes1 <= 0 || bytes2 <= 0 {
		t.Fatalf("expected nonzero communication: %d %d %d", bytesNaive, bytes1, bytes2)
	}
	ratio := float64(bytes2) / float64(bytesNaive)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("bytes should be same order of magnitude: naive=%d alg2=%d", bytesNaive, bytes2)
	}
}

func TestGradWShardOwnership(t *testing.T) {
	// Each rank's GradW slice must exactly equal the corresponding rows of
	// the reference gradient — no cross-shard leakage.
	w, x, labels := makeCase(700, 4, 6, 12)
	want := NewReference(w).ForwardBackward(x, labels)
	got, _ := RunSharded(w, x, labels, 3, Alg2)
	for r := 0; r < 3; r++ {
		lo, hi := ShardRange(12, 3, r)
		wantSlice := want.GradW.SliceRows(lo, hi)
		gotSlice := got.GradW.SliceRows(lo, hi)
		if d := wantSlice.MaxAbsDiff(gotSlice); d > 1e-9 {
			t.Fatalf("rank %d gradW slice differs by %g", r, d)
		}
	}
}

func TestPropShardedLossMatchesReference(t *testing.T) {
	f := func(seed uint64, pRaw, bsRaw, hRaw uint8, algRaw uint8) bool {
		p := []int{1, 2, 4}[int(pRaw)%3]
		bs := int(bsRaw%5) + 1
		h := int(hRaw%6) + 2
		v := p * (int(seed%4) + 2)
		alg := allAlgorithms()[int(algRaw)%3]
		w, x, labels := makeCase(seed, bs, h, v)
		want := NewReference(w).ForwardBackward(x, labels)
		got, _ := RunSharded(w, x, labels, p, alg)
		return math.Abs(got.Loss-want.Loss) <= 1e-9*(1+math.Abs(want.Loss)) &&
			got.GradX.MaxAbsDiff(want.GradX) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestShardRangePanicsOnIndivisible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic when V %% p != 0")
		}
	}()
	ShardRange(10, 3, 0)
}

func TestReferencePanicsOnBadLabel(t *testing.T) {
	w, x, _ := makeCase(800, 2, 4, 8)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for out-of-range label")
		}
	}()
	NewReference(w).ForwardBackward(x, []int{0, 99})
}
