package vocab

import (
	"fmt"

	"vocabpipe/internal/comm"
	"vocabpipe/internal/tensor"
)

// InputShard is one device's slice of the vocabulary-parallel input
// (embedding) layer described in Appendix C. Each rank owns rows [Lo, Hi) of
// the token-embedding matrix; the position embedding lives on rank 0 only
// (the paper notes the first device keeps positional and token-type
// embeddings, a small constant extra — §6.4).
//
// Forward: each rank builds the [bs, h] output from the tokens it owns
// (zeros elsewhere) and an all-reduce sum assembles the full embedding. The
// output tensor's size is independent of the vocabulary partition, which is
// the source of the input layer's sub-linear scaling in Table 3.
//
// Backward: the output gradient is broadcast (all ranks need it) and each
// rank scatters rows into its own weight-gradient slice.
type InputShard struct {
	Rank, P int
	Lo, Hi  int
	W       *tensor.Matrix // token embedding slice [Hi-Lo, h]
	Pos     *tensor.Matrix // position embedding [maxSeq, h]; non-nil on rank 0 only
	world   *comm.World
}

// NewInputShard slices the rank's rows from fullW [V, h]. pos may be nil for
// models without learned position embeddings; when non-nil it is copied onto
// rank 0.
func NewInputShard(world *comm.World, rank int, fullW, pos *tensor.Matrix) *InputShard {
	p := world.Size()
	lo, hi := ShardRange(fullW.Rows, p, rank)
	s := &InputShard{
		Rank:  rank,
		P:     p,
		Lo:    lo,
		Hi:    hi,
		W:     fullW.SliceRows(lo, hi),
		world: world,
	}
	if rank == 0 && pos != nil {
		s.Pos = pos.Clone()
	}
	return s
}

// Forward embeds tokens (length bs; position i gets position embedding i mod
// maxSeq when present) and returns the assembled [bs, h] activations,
// identical on every rank after the all-reduce.
func (s *InputShard) Forward(tokens []int) *tensor.Matrix {
	h := s.W.Cols
	out := tensor.New(len(tokens), h)
	for i, tok := range tokens {
		if tok >= s.Lo && tok < s.Hi {
			copy(out.Row(i), s.W.Row(tok-s.Lo))
		}
	}
	if s.Pos != nil {
		for i := range tokens {
			row := out.Row(i)
			prow := s.Pos.Row(i % s.Pos.Rows)
			for j := range row {
				row[j] += prow[j]
			}
		}
	}
	s.world.AllReduce(s.Rank, out.Data, comm.OpSum)
	return out
}

// Backward accumulates ∇W rows for the tokens this rank owns from the output
// gradient dOut [bs, h] (already present on every rank after the broadcast
// C0' of Appendix C). It returns this rank's weight-gradient slice and, on
// rank 0, the position-embedding gradient.
func (s *InputShard) Backward(tokens []int, dOut *tensor.Matrix) (gradW, gradPos *tensor.Matrix) {
	if dOut.Rows != len(tokens) {
		panic(fmt.Sprintf("vocab: input backward: %d grads for %d tokens", dOut.Rows, len(tokens)))
	}
	gradW = tensor.New(s.Hi-s.Lo, s.W.Cols)
	for i, tok := range tokens {
		if tok >= s.Lo && tok < s.Hi {
			dst := gradW.Row(tok - s.Lo)
			src := dOut.Row(i)
			for j := range dst {
				dst[j] += src[j]
			}
		}
	}
	if s.Pos != nil {
		gradPos = tensor.New(s.Pos.Rows, s.Pos.Cols)
		for i := range tokens {
			dst := gradPos.Row(i % s.Pos.Rows)
			src := dOut.Row(i)
			for j := range dst {
				dst[j] += src[j]
			}
		}
	}
	return gradW, gradPos
}

// ReferenceInput is the unpartitioned embedding layer used to verify
// InputShard.
type ReferenceInput struct {
	W   *tensor.Matrix // [V, h]
	Pos *tensor.Matrix // [maxSeq, h] or nil
}

// Forward embeds tokens with optional position embeddings.
func (r *ReferenceInput) Forward(tokens []int) *tensor.Matrix {
	out := tensor.New(len(tokens), r.W.Cols)
	for i, tok := range tokens {
		copy(out.Row(i), r.W.Row(tok))
		if r.Pos != nil {
			row := out.Row(i)
			prow := r.Pos.Row(i % r.Pos.Rows)
			for j := range row {
				row[j] += prow[j]
			}
		}
	}
	return out
}

// Backward returns ∇W [V, h] and ∇Pos for the given output gradient.
func (r *ReferenceInput) Backward(tokens []int, dOut *tensor.Matrix) (gradW, gradPos *tensor.Matrix) {
	gradW = tensor.New(r.W.Rows, r.W.Cols)
	for i, tok := range tokens {
		dst := gradW.Row(tok)
		src := dOut.Row(i)
		for j := range dst {
			dst[j] += src[j]
		}
	}
	if r.Pos != nil {
		gradPos = tensor.New(r.Pos.Rows, r.Pos.Cols)
		for i := range tokens {
			dst := gradPos.Row(i % r.Pos.Rows)
			src := dOut.Row(i)
			for j := range dst {
				dst[j] += src[j]
			}
		}
	}
	return gradW, gradPos
}
