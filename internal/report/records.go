package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Record is one machine-readable experiment cell: the sweep axes that
// produced it plus the paper's metrics. Field order is the canonical column
// order of the CSV emitter; values are deterministic, so both emitters are
// byte-stable across runs and worker counts.
type Record struct {
	Experiment string  `json:"experiment"`
	Label      string  `json:"label"`
	Model      string  `json:"model,omitempty"`
	Devices    int     `json:"devices,omitempty"`
	Seq        int     `json:"seq,omitempty"`
	Vocab      int     `json:"vocab,omitempty"`
	NumMicro   int     `json:"microbatches,omitempty"`
	Method     string  `json:"method,omitempty"`
	Error      string  `json:"error,omitempty"`
	OOM        bool    `json:"oom,omitempty"`
	IterTimeS  float64 `json:"iter_time_s,omitempty"`
	MFUPct     float64 `json:"mfu_pct,omitempty"`
	PeakMemGB  float64 `json:"peak_mem_gb,omitempty"`
	MinMemGB   float64 `json:"min_mem_gb,omitempty"`
	BubblePct  float64 `json:"bubble_pct,omitempty"`
}

// WriteJSON emits records as an indented JSON array.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if recs == nil {
		recs = []Record{}
	}
	return enc.Encode(recs)
}

// recordColumns is the CSV header, matching Record's field order.
var recordColumns = []string{
	"experiment", "label", "model", "devices", "seq", "vocab", "microbatches",
	"method", "error", "oom", "iter_time_s", "mfu_pct", "peak_mem_gb",
	"min_mem_gb", "bubble_pct",
}

// WriteCSV emits records as CSV with a fixed header row.
func WriteCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(recordColumns); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			r.Experiment, r.Label, r.Model,
			strconv.Itoa(r.Devices), strconv.Itoa(r.Seq), strconv.Itoa(r.Vocab),
			strconv.Itoa(r.NumMicro), r.Method, r.Error,
			strconv.FormatBool(r.OOM),
			floatCell(r.IterTimeS), floatCell(r.MFUPct), floatCell(r.PeakMemGB),
			floatCell(r.MinMemGB), floatCell(r.BubblePct),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func floatCell(v float64) string { return fmt.Sprintf("%.6g", v) }
