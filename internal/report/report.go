// Package report formats experiment results as aligned text tables and CSV,
// including side-by-side paper-vs-measured comparisons used to generate
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows with a fixed header.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; values are formatted with %v, floats with 2 decimals.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Pct formats a fraction as a percentage string with one decimal.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// GB formats bytes as gigabytes with two decimals.
func GB(bytes float64) string { return fmt.Sprintf("%.2f", bytes/(1<<30)) }

// PaperVs formats "measured (paper X)" cells; a negative paper value renders
// as "-" (the paper's OOM dashes).
func PaperVs(measured, paper float64) string {
	if paper < 0 {
		return fmt.Sprintf("%.2f (paper -)", measured)
	}
	return fmt.Sprintf("%.2f (paper %.2f)", measured, paper)
}
