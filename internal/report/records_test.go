package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Experiment: "table5", Label: "4B/seq2048/V32k/baseline", Model: "4B",
			Devices: 8, Seq: 2048, Vocab: 32768, NumMicro: 128, Method: "baseline",
			IterTimeS: 1.25, MFUPct: 46.2, PeakMemGB: 14.9, MinMemGB: 10.1, BubblePct: 8.5},
		{Experiment: "table5", Label: "4B/seq2048/V256k/baseline", Model: "4B",
			Devices: 8, Seq: 2048, Vocab: 262144, NumMicro: 128, Method: "baseline",
			OOM: true, IterTimeS: 2.5, MFUPct: 25.2, PeakMemGB: 85.0, MinMemGB: 20.0, BubblePct: 30.0},
		{Experiment: "custom", Label: "broken", Error: "layout: 32 layers not divisible by 7 stages"},
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(back) != 3 || back[0].MFUPct != 46.2 || !back[1].OOM || back[2].Error == "" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("nil records should emit [], got %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,label,model,devices,") {
		t.Errorf("header %q", lines[0])
	}
	for i, line := range lines {
		if got := strings.Count(line, ",") + 1; got != len(recordColumns) {
			t.Errorf("line %d has %d columns, want %d: %q", i, got, len(recordColumns), line)
		}
	}
	if !strings.Contains(lines[2], "true") {
		t.Errorf("OOM row lost its flag: %q", lines[2])
	}
}

// TestEmittersDeterministic proves repeated emission is byte-identical.
func TestEmittersDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	recs := sampleRecords()
	if err := WriteJSON(&a, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSON emission is not deterministic")
	}
	a.Reset()
	b.Reset()
	if err := WriteCSV(&a, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("CSV emission is not deterministic")
	}
}
