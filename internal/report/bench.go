package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// BenchSchemaVersion is the current BENCH_<n>.json schema. Readers reject
// files whose schema_version differs so a gate never silently compares
// incompatible measurements.
const BenchSchemaVersion = 1

// BenchCase is one measured benchmark case of a perf run.
type BenchCase struct {
	Name string `json:"name"`
	// N is the iteration count the measurement averaged over.
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Cells and CellsPerSec are set for sweep-grid cases: cells evaluated
	// per op and the resulting grid throughput.
	Cells       int     `json:"cells,omitempty"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
	// ReqPerSec and CacheHitPct are set for server-throughput cases: HTTP
	// requests served per second (one request per op) and the result-cache
	// hit rate over the measured run. Optional fields added within schema
	// version 1 — older BENCH files simply lack them.
	ReqPerSec   float64 `json:"req_per_sec,omitempty"`
	CacheHitPct float64 `json:"cache_hit_pct,omitempty"`
	// QualityPct is set for search-strategy cases (tune/*): the budgeted
	// strategy's best objective score relative to the exhaustive oracle's,
	// in percent — 100 means the cheap search found the optimum. Optional
	// field added within schema version 1.
	QualityPct float64 `json:"quality_pct,omitempty"`
}

// BenchReport is a schema-versioned perf run: environment provenance plus
// the measured cases. Serialized as BENCH_<n>.json; BENCH_0.json is the
// committed baseline the CI gate compares PR runs against.
type BenchReport struct {
	SchemaVersion int    `json:"schema_version"`
	GitSHA        string `json:"git_sha,omitempty"`
	Date          string `json:"date,omitempty"` // RFC 3339, UTC
	GoVersion     string `json:"go_version,omitempty"`
	GOOS          string `json:"goos,omitempty"`
	GOARCH        string `json:"goarch,omitempty"`
	MaxProcs      int    `json:"maxprocs,omitempty"`
	// QuickMode records a single-iteration run (-benchtime 1x equivalent),
	// whose timings are noisier than a timed run.
	QuickMode bool        `json:"quick_mode,omitempty"`
	Cases     []BenchCase `json:"cases"`
}

// Case returns the named case, or nil.
func (r *BenchReport) Case(name string) *BenchCase {
	for i := range r.Cases {
		if r.Cases[i].Name == name {
			return &r.Cases[i]
		}
	}
	return nil
}

// WriteBench emits the report as indented JSON.
func WriteBench(w io.Writer, r *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteBenchFile writes the report to path.
func WriteBenchFile(path string, r *BenchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBench(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBench parses a BENCH report and validates its schema version.
func ReadBench(rd io.Reader) (*BenchReport, error) {
	var r BenchReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("report: bad BENCH file: %w", err)
	}
	if r.SchemaVersion != BenchSchemaVersion {
		return nil, fmt.Errorf("report: BENCH schema_version %d, this build understands %d",
			r.SchemaVersion, BenchSchemaVersion)
	}
	return &r, nil
}

// ReadBenchFile reads and validates a BENCH file from path.
func ReadBenchFile(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
