package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("demo", "name", "mfu", "mem")
	t.Add("baseline", 46.16, "14.86")
	t.Add("vocab-2", 50.23, "14.83")
	return t
}

func TestStringAlignment(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "## demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, blank, header, separator, two rows.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[4], "46.16") {
		t.Fatalf("float not formatted to 2 decimals: %q", lines[4])
	}
	// Columns aligned: header and rows share the separator's width.
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("header/separator width mismatch")
	}
}

func TestCSV(t *testing.T) {
	out := sample().CSV()
	want := "name,mfu,mem\nbaseline,46.16,14.86\nvocab-2,50.23,14.83\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	if !strings.Contains(out, "| name | mfu | mem |") {
		t.Fatalf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|---|") {
		t.Fatalf("markdown separator missing:\n%s", out)
	}
}

func TestNoTitle(t *testing.T) {
	tbl := New("", "a")
	tbl.Add(1)
	if strings.Contains(tbl.String(), "##") {
		t.Fatalf("unexpected title rendered")
	}
}

func TestHelpers(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.123))
	}
	if GB(float64(3<<30)) != "3.00" {
		t.Fatalf("GB = %q", GB(float64(3<<30)))
	}
	if PaperVs(1.5, 2.5) != "1.50 (paper 2.50)" {
		t.Fatalf("PaperVs = %q", PaperVs(1.5, 2.5))
	}
	if PaperVs(1.5, -1) != "1.50 (paper -)" {
		t.Fatalf("PaperVs OOM = %q", PaperVs(1.5, -1))
	}
}

func TestAddIntFormatting(t *testing.T) {
	tbl := New("", "n")
	tbl.Add(42)
	if !strings.Contains(tbl.String(), "42") {
		t.Fatalf("int not rendered")
	}
}
