package report

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleBench() *BenchReport {
	return &BenchReport{
		SchemaVersion: BenchSchemaVersion,
		GitSHA:        "deadbeef",
		Date:          "2026-07-29T00:00:00Z",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		MaxProcs:      1,
		Cases: []BenchCase{
			{Name: "engine/heap/21B", N: 10, NsPerOp: 9.3e6, AllocsPerOp: 33000, BytesPerOp: 2e7},
			{Name: "sweep/table5", N: 1, NsPerOp: 5e8, AllocsPerOp: 1e6, BytesPerOp: 4e9,
				Cells: 120, CellsPerSec: 240},
		},
	}
}

func TestBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := sampleBench()
	if err := WriteBenchFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != BenchSchemaVersion || got.GitSHA != "deadbeef" {
		t.Errorf("metadata round-trip: %+v", got)
	}
	if len(got.Cases) != 2 {
		t.Fatalf("cases round-trip: %+v", got.Cases)
	}
	if c := got.Case("sweep/table5"); c == nil || c.Cells != 120 || c.CellsPerSec != 240 {
		t.Errorf("Case lookup: %+v", c)
	}
	if got.Case("nope") != nil {
		t.Error("Case should return nil for a missing name")
	}
}

func TestBenchSchemaVersionRejected(t *testing.T) {
	_, err := ReadBench(strings.NewReader(`{"schema_version": 999, "cases": []}`))
	if err == nil || !strings.Contains(err.Error(), "schema_version 999") {
		t.Errorf("want schema rejection, got %v", err)
	}
	_, err = ReadBench(strings.NewReader(`not json`))
	if err == nil || !strings.Contains(err.Error(), "bad BENCH file") {
		t.Errorf("want parse error, got %v", err)
	}
}

func TestReadBenchFileMissing(t *testing.T) {
	if _, err := ReadBenchFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}
