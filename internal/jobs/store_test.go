package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0).UTC()
	put := func(id string, state State) {
		t.Helper()
		if err := s.Put(Record{ID: id, Name: "n-" + id, Kind: "k", State: state,
			Payload: json.RawMessage(`{"x":1}`), CreatedAt: now}); err != nil {
			t.Fatal(err)
		}
	}
	put("j2", StateQueued)
	put("j1", StateRunning)
	put("j1", StateDone) // last write wins
	if err := s.Delete("j3"); err != nil {
		t.Fatal(err) // deleting a never-put ID is fine
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{ID: "j9"}); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("Put after Close = %v, want ErrStoreClosed", err)
	}

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "j1" || recs[1].ID != "j2" {
		t.Fatalf("replayed %+v, want j1 (done) then j2 (queued)", recs)
	}
	if recs[0].State != StateDone || string(recs[0].Payload) != `{"x":1}` {
		t.Errorf("j1 = %+v, want last-wins done state with payload intact", recs[0])
	}
	// Reopening compacted the log: the live set is 2 records, so the file
	// holds exactly 2 lines regardless of the 4 ops that produced them.
	raw, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(raw), "\n"); lines != 2 {
		t.Errorf("compacted WAL has %d lines, want 2:\n%s", lines, raw)
	}
}

func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(Record{ID: "j1", State: StateDone})
	s.Close()
	// Simulate a crash mid-append: a half-written JSON line at the tail.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"put","rec":{"id":"j2","st`)
	f.Close()

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer s2.Close()
	recs, _ := s2.Load()
	if len(recs) != 1 || recs[0].ID != "j1" {
		t.Fatalf("replayed %+v, want only the intact j1", recs)
	}
}

// TestQueueRestore: a queue over a replayed store serves finished results,
// resumes queued jobs, and re-runs jobs that were mid-run at the crash.
func TestQueueRestore(t *testing.T) {
	store := NewMemStore()
	ran := make(chan string, 8)
	rehydrate := map[string]Rehydrator{
		"echo": func(payload json.RawMessage) (Func, error) {
			return func(ctx context.Context, report func(Progress)) (any, error) {
				var v map[string]int
				json.Unmarshal(payload, &v)
				ran <- string(payload)
				return v, nil
			}, nil
		},
	}
	// Seed the store as a dead coordinator would have left it: one finished
	// job, one queued, one caught mid-run, one of an unknown kind.
	now := time.Unix(2000, 0).UTC()
	store.Put(Record{ID: "j1", Name: "finished", Kind: "echo", State: StateDone,
		Result: json.RawMessage(`{"best":42}`), CreatedAt: now})
	store.Put(Record{ID: "j2", Name: "queued", Kind: "echo", State: StateQueued,
		Payload: json.RawMessage(`{"a":1}`), CreatedAt: now})
	store.Put(Record{ID: "j3", Name: "mid-run", Kind: "echo", State: StateRunning,
		Payload: json.RawMessage(`{"b":2}`), CreatedAt: now})
	store.Put(Record{ID: "j4", Name: "orphan", Kind: "mystery", State: StateQueued,
		CreatedAt: now})

	q := New(Options{Workers: 1, Store: store, Rehydrate: rehydrate})
	defer q.Close(context.Background())

	// The finished job still serves its exact result bytes.
	s1, ok := q.Get("j1")
	if !ok || s1.State != StateDone {
		t.Fatalf("restored finished job = %+v", s1)
	}
	if raw, _ := json.Marshal(s1.Result); string(raw) != `{"best":42}` {
		t.Errorf("restored result = %s, want the persisted bytes verbatim", raw)
	}
	// Queued and mid-run jobs both run to done.
	waitState(t, q, "j2", StateDone)
	waitState(t, q, "j3", StateDone)
	reran := map[string]bool{}
	for i := 0; i < 2; i++ {
		reran[<-ran] = true
	}
	if !reran[`{"a":1}`] || !reran[`{"b":2}`] {
		t.Errorf("resumed payloads = %v, want both the queued and the mid-run job", reran)
	}
	// The unknown kind settles as failed, with the reason in the error.
	s4, _ := q.Get("j4")
	if s4.State != StateFailed || !strings.Contains(s4.Error, "no rehydrator") {
		t.Errorf("orphan job = %+v, want failed with a rehydrator error", s4)
	}
	// New submissions continue the ID sequence instead of colliding.
	id, err := q.Submit("fresh", func(ctx context.Context, report func(Progress)) (any, error) {
		return nil, nil
	})
	if err != nil || id != "j5" {
		t.Fatalf("post-restore Submit = (%q, %v), want j5", id, err)
	}
}

// TestDurableLifecyclePersists: every transition of a durable job lands in
// the store, a user cancel persists as cancelled, and a shutdown persists
// a running durable job as queued — the resume intent.
func TestDurableLifecyclePersists(t *testing.T) {
	store := NewMemStore()
	q := New(Options{Workers: 1, Store: store})

	// Done path.
	id, err := q.SubmitDurable("search", "echo", map[string]int{"n": 1},
		func(ctx context.Context, report func(Progress)) (any, error) {
			report(Progress{Done: 1, Total: 2, Note: "half"})
			return "answer", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, q, id, StateDone)
	recs, _ := store.Load()
	if len(recs) != 1 || recs[0].State != StateDone || string(recs[0].Result) != `"answer"` {
		t.Fatalf("store after done = %+v", recs)
	}
	if recs[0].Progress.Note != "half" {
		t.Errorf("progress not persisted: %+v", recs[0].Progress)
	}

	// A memory-only job must never touch the store.
	mid, _ := q.Submit("ephemeral", func(ctx context.Context, report func(Progress)) (any, error) {
		return nil, nil
	})
	waitState(t, q, mid, StateDone)
	if recs, _ := store.Load(); len(recs) != 1 {
		t.Fatalf("plain Submit leaked into the store: %+v", recs)
	}

	// User cancel of a running durable job persists cancelled.
	block := make(chan struct{})
	cid, _ := q.SubmitDurable("cancel-me", "echo", nil,
		func(ctx context.Context, report func(Progress)) (any, error) {
			close(block)
			<-ctx.Done()
			return nil, ctx.Err()
		})
	<-block
	q.Cancel(cid)
	waitState(t, q, cid, StateCancelled)
	found := false
	recs, _ = store.Load()
	for _, r := range recs {
		if r.ID == cid {
			found = true
			if r.State != StateCancelled {
				t.Errorf("user-cancelled job persisted as %q, want cancelled", r.State)
			}
		}
	}
	if !found {
		t.Fatalf("cancelled job missing from store: %+v", recs)
	}

	// Shutdown while a durable job runs: memory says cancelled (this
	// process's truth), the store says queued (the successor's orders).
	block2 := make(chan struct{})
	sid, _ := q.SubmitDurable("survive-me", "echo", map[string]int{"n": 2},
		func(ctx context.Context, report func(Progress)) (any, error) {
			close(block2)
			<-ctx.Done()
			return nil, ctx.Err()
		})
	<-block2
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s, _ := q.Get(sid); s.State != StateCancelled {
		t.Fatalf("in-memory state after shutdown = %q, want cancelled", s.State)
	}
	recs, _ = store.Load()
	for _, r := range recs {
		if r.ID == sid {
			if r.State != StateQueued {
				t.Errorf("shutdown-cancelled durable job persisted as %q, want queued", r.State)
			}
			if r.Error != "" || r.FinishedAt != nil {
				t.Errorf("resume-intent record carries terminal residue: %+v", r)
			}
			return
		}
	}
	t.Fatalf("job %s missing from store after shutdown: %+v", sid, recs)
}

// TestPruneDeletesFromStore: the retention cap applies to the store too.
func TestPruneDeletesFromStore(t *testing.T) {
	store := NewMemStore()
	q := New(Options{Workers: 1, KeepFinished: 2, Store: store})
	defer q.Close(context.Background())
	noop := func(ctx context.Context, report func(Progress)) (any, error) { return nil, nil }
	var last string
	for i := 0; i < 5; i++ {
		id, err := q.SubmitDurable("n", "echo", nil, noop)
		if err != nil {
			t.Fatal(err)
		}
		last = id
		waitState(t, q, id, StateDone)
	}
	// One more submission triggers pruning of the overflow.
	if _, err := q.SubmitDurable("n", "echo", nil, noop); err != nil {
		t.Fatal(err)
	}
	waitState(t, q, last, StateDone)
	recs, _ := store.Load()
	memory := q.List()
	if len(recs) > len(memory) {
		t.Fatalf("store holds %d records but memory %d — a restart would resurrect pruned jobs", len(recs), len(memory))
	}
	inMem := map[string]bool{}
	for _, s := range memory {
		inMem[s.ID] = true
	}
	for _, r := range recs {
		if !inMem[r.ID] {
			t.Errorf("store record %s has no in-memory job", r.ID)
		}
	}
}
