// Package jobs is a generic in-process async job queue: submit a function,
// poll its progress, fetch its result or cancel it. It is the machinery
// behind POST /api/optimize (long-running tuner searches must not hold an
// HTTP request open) and `vpbench -tune`'s progress reporting, but knows
// nothing about either — a job is any func(ctx, report) (any, error).
//
// Properties:
//
//   - bounded workers: at most Workers jobs run concurrently; the rest wait
//     in a bounded pending queue (Submit fails fast with ErrQueueFull past
//     capacity — backpressure, not unbounded memory);
//   - cancellation: Cancel stops a queued job immediately and signals a
//     running job through its context;
//   - progress: jobs publish Progress snapshots; Get returns a consistent
//     point-in-time Snapshot at any moment of the lifecycle;
//   - bounded history: finished jobs are retained for polling but the oldest
//     are pruned past a cap, so a long-lived server cannot leak jobs;
//   - durability (optional): jobs submitted through SubmitDurable write
//     through to Options.Store on every lifecycle transition, and a new
//     queue replays the store — queued jobs resume, jobs that died mid-run
//     re-run, finished results are still servable (see store.go).
//
// Lifecycle: queued → running → done | failed | cancelled. A panic in a job
// function is captured as a failure; it never kills a worker.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress is a job's self-reported position, opaque to the queue.
type Progress struct {
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Note  string `json:"note,omitempty"`
}

// Func is the work a job performs. It must honor ctx (cancellation) and may
// call report at any time to publish progress; report is safe for concurrent
// use and never blocks.
type Func func(ctx context.Context, report func(Progress)) (any, error)

// Snapshot is a consistent view of one job, JSON-shaped for the HTTP API.
type Snapshot struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	State    State    `json:"state"`
	Progress Progress `json:"progress"`
	// Result is the job function's return value once State == done.
	Result any `json:"result,omitempty"`
	// Error explains failed/cancelled states.
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

var (
	// ErrQueueFull is returned by Submit when the pending queue is at
	// capacity — the caller's backpressure signal (HTTP 429).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("jobs: queue closed")
)

// Rehydrator rebuilds a durable job's Func from its persisted payload
// after a restart — the closure itself cannot cross a process boundary, so
// durable submissions carry a (kind, payload) pair and the new process
// registers a Rehydrator per kind (Options.Rehydrate).
type Rehydrator func(payload json.RawMessage) (Func, error)

// job is the internal record; mu guards everything mutable.
type job struct {
	id        string
	name      string
	fn        Func
	durable   bool
	kind      string
	payload   json.RawMessage
	mu        sync.Mutex
	state     State
	progress  Progress
	result    any
	err       error
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc // non-nil while running
	cancelReq bool               // Cancel seen before/while running
	// watchers receive a Snapshot on every progress update and state
	// change; their channels close when the job reaches a terminal state.
	watchers map[*watcher]bool
}

// watcher is one Watch subscription. Its channel is buffered to one
// snapshot and coalesced: a slow consumer always sees the latest state, not
// a backlog, and the terminal snapshot is never dropped (it replaces any
// stale pending one before the channel closes).
type watcher struct {
	ch chan Snapshot
}

// notifyLocked publishes the current snapshot to every watcher and, on a
// terminal state, delivers the final snapshot and closes the channels.
// Caller holds j.mu.
func (j *job) notifyLocked() {
	if len(j.watchers) == 0 {
		return
	}
	snap := j.snapshotLocked()
	for w := range j.watchers {
		select {
		case w.ch <- snap:
			continue
		default:
		}
		// Full: drop the stale snapshot and replace it with the latest.
		select {
		case <-w.ch:
		default:
		}
		select {
		case w.ch <- snap:
		default:
		}
	}
	if snap.State.Terminal() {
		for w := range j.watchers {
			close(w.ch)
		}
		j.watchers = nil
	}
}

// Queue runs submitted jobs on a fixed worker pool. Construct with New.
type Queue struct {
	mu    sync.Mutex
	cond  *sync.Cond // signals workers when pending grows or the queue closes
	jobs  map[string]*job
	order []string // submission order, for history pruning
	// pending is the FIFO of jobs awaiting a worker. A slice (not a
	// channel) so Cancel can remove a queued job immediately — a cancelled
	// job must free its capacity slot rather than sit as a tombstone that
	// keeps Submit answering ErrQueueFull.
	pending  []*job
	capacity int
	wg       sync.WaitGroup
	closed   bool
	nextID   int
	keep     int

	// Lifecycle counters behind Stats. Atomics because terminal transitions
	// happen under the individual job's lock, not q.mu.
	running   atomic.Int64
	submitted atomic.Int64
	done      atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	pruned    atomic.Int64

	baseCtx context.Context
	stopAll context.CancelFunc

	store     Store
	rehydrate map[string]Rehydrator

	now func() time.Time // injectable clock for tests
}

// Options tunes a Queue.
type Options struct {
	// Workers is the concurrent job limit (default 2).
	Workers int
	// Capacity bounds the pending queue (default 64).
	Capacity int
	// KeepFinished bounds how many terminal jobs are retained for polling
	// (default 256); the oldest are pruned first.
	KeepFinished int
	// Store, when non-nil, persists durable jobs (SubmitDurable) and is
	// replayed at construction. Plain Submit jobs stay memory-only.
	Store Store
	// Rehydrate maps a durable job kind to the function that rebuilds its
	// Func from the persisted payload. A replayed non-terminal job whose
	// kind has no rehydrator settles as failed instead of resuming.
	Rehydrate map[string]Rehydrator
}

// New starts a queue with the given options.
func New(opt Options) *Queue {
	if opt.Workers <= 0 {
		opt.Workers = 2
	}
	if opt.Capacity <= 0 {
		opt.Capacity = 64
	}
	if opt.KeepFinished <= 0 {
		opt.KeepFinished = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		jobs:      make(map[string]*job),
		capacity:  opt.Capacity,
		keep:      opt.KeepFinished,
		baseCtx:   ctx,
		stopAll:   cancel,
		store:     opt.Store,
		rehydrate: opt.Rehydrate,
		now:       time.Now,
	}
	q.cond = sync.NewCond(&q.mu)
	q.restore()
	for i := 0; i < opt.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// restore replays the store into the queue before the workers start:
// terminal jobs become servable history, queued jobs re-enter the pending
// queue in their original order, and jobs that were running when the
// previous process died are re-queued to run again from scratch — job
// functions are deterministic searches, so a re-run converges on the same
// result the lost run would have produced.
func (q *Queue) restore() {
	if q.store == nil {
		return
	}
	recs, err := q.store.Load()
	if err != nil {
		// The WAL was readable moments ago when the store opened (or it
		// would not exist); treat an unreadable replay as an empty history
		// rather than refusing to serve — new durable writes still land.
		return
	}
	for _, rec := range recs {
		j := &job{
			id:       rec.ID,
			name:     rec.Name,
			durable:  true,
			kind:     rec.Kind,
			payload:  rec.Payload,
			state:    rec.State,
			progress: rec.Progress,
			created:  rec.CreatedAt,
		}
		if n := jobIDNum(rec.ID); n > q.nextID {
			q.nextID = n
		}
		if rec.Error != "" {
			j.err = errors.New(rec.Error)
		}
		if rec.StartedAt != nil {
			j.started = *rec.StartedAt
		}
		if rec.FinishedAt != nil {
			j.finished = *rec.FinishedAt
		}
		if len(rec.Result) > 0 {
			// Kept as raw JSON: it serializes byte-identically to what the
			// previous process would have served.
			j.result = json.RawMessage(rec.Result)
		}
		if !rec.State.Terminal() {
			fn, ferr := q.rehydrateFunc(rec)
			if ferr != nil {
				j.state = StateFailed
				j.err = ferr
				j.finished = q.now()
				q.persistLocked(j, StateFailed)
			} else {
				j.fn = fn
				j.state = StateQueued
				j.err = nil
				j.started = time.Time{}
				j.finished = time.Time{}
				if rec.State != StateQueued {
					// It was mid-run at the crash; record the reset so a
					// second crash before the re-run still replays cleanly.
					q.persistLocked(j, StateQueued)
				}
				q.pending = append(q.pending, j)
			}
		}
		q.jobs[j.id] = j
		q.order = append(q.order, j.id)
	}
}

// rehydrateFunc resolves a replayed job's kind to a fresh Func.
func (q *Queue) rehydrateFunc(rec Record) (Func, error) {
	r := q.rehydrate[rec.Kind]
	if r == nil {
		return nil, fmt.Errorf("jobs: no rehydrator for job kind %q", rec.Kind)
	}
	fn, err := r(rec.Payload)
	if err != nil {
		return nil, fmt.Errorf("jobs: rehydrating %s job %s: %w", rec.Kind, rec.ID, err)
	}
	return fn, nil
}

// persistLocked writes a durable job through to the store with the given
// persisted state — usually the job's own state, but a shutdown-cancelled
// durable job persists as queued: the process is going away, the work is
// not. Write errors are deliberately dropped: a closed store is how the
// harness models a killed process, and a dying process's writes not
// landing is exactly the semantics the replay is built for. Caller holds
// j.mu (or has exclusive access to j).
func (q *Queue) persistLocked(j *job, state State) {
	if q.store == nil || !j.durable {
		return
	}
	rec := Record{
		ID:        j.id,
		Name:      j.name,
		Kind:      j.kind,
		Payload:   j.payload,
		State:     state,
		Progress:  j.progress,
		CreatedAt: j.created,
	}
	if state != StateQueued {
		// A record persisted as queued is a resume intent — whatever error
		// or timestamps the in-memory job accumulated on its way down do
		// not belong in it.
		if j.err != nil {
			rec.Error = j.err.Error()
		}
		if !j.started.IsZero() {
			t := j.started
			rec.StartedAt = &t
		}
		if !j.finished.IsZero() {
			t := j.finished
			rec.FinishedAt = &t
		}
	}
	if state == StateDone && j.result != nil {
		if raw, err := json.Marshal(j.result); err == nil {
			rec.Result = raw
		} else {
			rec.Error = fmt.Sprintf("jobs: result not serializable: %v", err)
		}
	}
	q.store.Put(rec)
}

// Submit enqueues fn and returns the new job's id. It never blocks: a full
// queue fails with ErrQueueFull, a closed queue with ErrClosed. The job is
// memory-only; use SubmitDurable for jobs that must survive a restart.
func (q *Queue) Submit(name string, fn Func) (string, error) {
	return q.submit(&job{name: name, fn: fn})
}

// SubmitDurable enqueues a job that writes through to Options.Store on
// every lifecycle transition. kind selects the Rehydrator a restarted
// queue uses to rebuild fn, and payload (anything JSON-serializable) is
// what that Rehydrator receives. With a nil Store this is just Submit.
func (q *Queue) SubmitDurable(name, kind string, payload any, fn Func) (string, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("jobs: encoding %s payload: %w", kind, err)
	}
	return q.submit(&job{name: name, fn: fn, durable: true, kind: kind, payload: raw})
}

func (q *Queue) submit(j *job) (string, error) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return "", ErrClosed
	}
	if len(q.pending) >= q.capacity {
		q.mu.Unlock()
		return "", ErrQueueFull
	}
	q.nextID++
	j.id = fmt.Sprintf("j%d", q.nextID)
	j.state = StateQueued
	j.created = q.now()
	q.pending = append(q.pending, j)
	q.jobs[j.id] = j
	q.order = append(q.order, j.id)
	q.persistLocked(j, StateQueued)
	q.pruneLocked()
	q.mu.Unlock()
	q.submitted.Add(1)
	q.cond.Signal()
	return j.id, nil
}

// Stats is a point-in-time view of the queue's lifecycle counters, the feed
// for the /metrics jobs families. Queued and Running are gauges; the rest
// are monotone totals since construction.
type Stats struct {
	// Queued is the current pending-queue depth (capacity minus headroom).
	Queued int `json:"queued"`
	// Running is how many jobs workers are executing right now.
	Running int `json:"running"`
	// Submitted counts successful Submit calls.
	Submitted int64 `json:"submitted"`
	// Done, Failed and Cancelled count terminal transitions.
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	// Pruned counts finished jobs dropped past the retention cap.
	Pruned int64 `json:"pruned"`
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	depth := len(q.pending)
	q.mu.Unlock()
	return Stats{
		Queued:    depth,
		Running:   int(q.running.Load()),
		Submitted: q.submitted.Load(),
		Done:      q.done.Load(),
		Failed:    q.failed.Load(),
		Cancelled: q.cancelled.Load(),
		Pruned:    q.pruned.Load(),
	}
}

// Watch subscribes to one job's lifecycle: the returned channel immediately
// carries the current snapshot, then one on every progress update and state
// change, and closes once a terminal snapshot has been delivered. Delivery
// is coalesced — a slow consumer sees the latest state rather than a
// backlog — but the terminal snapshot is never dropped. The cancel function
// detaches the watcher (idempotent, safe after close); the ok result is
// false for unknown job ids.
func (q *Queue) Watch(id string) (<-chan Snapshot, func(), bool) {
	q.mu.Lock()
	j := q.jobs[id]
	q.mu.Unlock()
	if j == nil {
		return nil, nil, false
	}
	w := &watcher{ch: make(chan Snapshot, 1)}
	j.mu.Lock()
	snap := j.snapshotLocked()
	w.ch <- snap
	if snap.State.Terminal() {
		close(w.ch)
	} else {
		if j.watchers == nil {
			j.watchers = make(map[*watcher]bool)
		}
		j.watchers[w] = true
	}
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if j.watchers[w] {
			delete(j.watchers, w)
			close(w.ch)
		}
		j.mu.Unlock()
	}
	return w.ch, cancel, true
}

// pruneLocked drops the oldest terminal jobs past the retention cap.
// Caller holds q.mu.
func (q *Queue) pruneLocked() {
	finished := 0
	for _, id := range q.order {
		if j := q.jobs[id]; j != nil && j.snapshot().State.Terminal() {
			finished++
		}
	}
	if finished <= q.keep {
		return
	}
	kept := q.order[:0]
	for _, id := range q.order {
		j := q.jobs[id]
		if j != nil && finished > q.keep && j.snapshot().State.Terminal() {
			delete(q.jobs, id)
			if j.durable && q.store != nil {
				// Retention is one policy, not two: a job pruned from
				// memory is pruned from the store, or a restart would
				// resurrect history the running server already forgot.
				q.store.Delete(id)
			}
			q.pruned.Add(1)
			finished--
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

// Get returns a snapshot of the job, if known.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	j := q.jobs[id]
	q.mu.Unlock()
	if j == nil {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// List snapshots every known job in submission order. Results are omitted —
// a listing of hundreds of finished searches must not embed every ranked
// candidate set; fetch one job's result with Get.
func (q *Queue) List() []Snapshot {
	q.mu.Lock()
	js := make([]*job, 0, len(q.order))
	for _, id := range q.order {
		if j := q.jobs[id]; j != nil {
			js = append(js, j)
		}
	}
	q.mu.Unlock()
	out := make([]Snapshot, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
		out[i].Result = nil
	}
	return out
}

// Cancel requests cancellation. A queued job is cancelled immediately; a
// running job is signalled through its context and reaches the cancelled
// state when it returns. Cancelling a terminal job is a no-op. The returned
// snapshot reflects the post-cancel state.
func (q *Queue) Cancel(id string) (Snapshot, bool) {
	q.mu.Lock()
	j := q.jobs[id]
	q.mu.Unlock()
	if j == nil {
		return Snapshot{}, false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = q.now()
		q.cancelled.Add(1)
		q.persistLocked(j, StateCancelled)
		j.notifyLocked()
		j.mu.Unlock()
		// Free the capacity slot immediately: a cancelled job must not
		// occupy the pending queue (and 429 new submissions) while it waits
		// for a worker to skip it.
		q.mu.Lock()
		for i, p := range q.pending {
			if p == j {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
		q.mu.Unlock()
		return j.snapshot(), true
	case StateRunning:
		j.cancelReq = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	return j.snapshot(), true
}

// Close stops accepting jobs, cancels everything queued or running, and
// waits for the workers to drain (or ctx to expire). Safe to call twice.
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast() // wake idle workers so they observe closed
	q.stopAll()        // signals every running job's context

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: close: %w", ctx.Err())
	}
}

// worker pops pending jobs until Close. Jobs still pending at Close are run
// with an already-cancelled base context, so they settle as cancelled.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		j := q.pending[0]
		q.pending = q.pending[1:]
		q.mu.Unlock()
		q.runOne(j)
	}
}

// runOne executes one job, translating context errors and panics into
// terminal states.
func (q *Queue) runOne(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while pending
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(q.baseCtx)
	j.state = StateRunning
	j.started = q.now()
	j.cancel = cancel
	if j.cancelReq { // cancelled in the gap before the worker picked it up
		cancel()
	}
	fn := j.fn
	q.running.Add(1)
	q.persistLocked(j, StateRunning)
	j.notifyLocked()
	j.mu.Unlock()
	defer cancel()

	report := func(p Progress) {
		j.mu.Lock()
		j.progress = p
		q.persistLocked(j, StateRunning)
		j.notifyLocked()
		j.mu.Unlock()
	}

	var (
		result any
		err    error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("jobs: job %s panicked: %v", j.id, r)
			}
		}()
		result, err = fn(ctx, report)
	}()

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = q.now()
	j.cancel = nil
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		q.done.Add(1)
		q.persistLocked(j, StateDone)
	case (j.cancelReq || q.baseCtx.Err() != nil) && errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err
		q.cancelled.Add(1)
		if j.cancelReq {
			q.persistLocked(j, StateCancelled)
		} else {
			// Shutdown, not a user cancel: the process is going away but
			// the work is not — persist as queued so the successor opening
			// the same store resumes it instead of serving "cancelled".
			q.persistLocked(j, StateQueued)
		}
	default:
		j.state = StateFailed
		j.err = err
		q.failed.Add(1)
		q.persistLocked(j, StateFailed)
	}
	q.running.Add(-1)
	j.notifyLocked()
}

// snapshot copies the job state under its lock.
func (j *job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// snapshotLocked copies the job state; caller holds j.mu.
func (j *job) snapshotLocked() Snapshot {
	s := Snapshot{
		ID:        j.id,
		Name:      j.name,
		State:     j.state,
		Progress:  j.progress,
		Result:    j.result,
		CreatedAt: j.created,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}
