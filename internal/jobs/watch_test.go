package jobs

import (
	"context"
	"testing"
	"time"
)

// recvSnap pulls one snapshot with a deadline so a broken Watch fails the
// test instead of hanging it.
func recvSnap(t *testing.T, ch <-chan Snapshot) (Snapshot, bool) {
	t.Helper()
	select {
	case s, ok := <-ch:
		return s, ok
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a watch snapshot")
		return Snapshot{}, false
	}
}

func TestWatchLifecycle(t *testing.T) {
	q := New(Options{Workers: 1})
	defer q.Close(context.Background())

	release := make(chan struct{})
	id, err := q.Submit("watched", func(ctx context.Context, report func(Progress)) (any, error) {
		report(Progress{Done: 1, Total: 2, Note: "halfway"})
		<-release
		report(Progress{Done: 2, Total: 2})
		return "result", nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ch, stop, ok := q.Watch(id)
	if !ok {
		t.Fatalf("Watch(%q) unknown", id)
	}
	defer stop()

	// First snapshot arrives immediately with the current state.
	first, ok := recvSnap(t, ch)
	if !ok {
		t.Fatal("channel closed before any snapshot")
	}
	if first.State.Terminal() {
		t.Fatalf("first snapshot already terminal: %+v", first)
	}

	// Drain until the run blocks on release; the latest snapshot must show
	// the reported progress (delivery coalesces, so poll until it appears).
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, _ := q.Get(id)
		if snap.Progress.Note == "halfway" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("progress never reported: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	// The stream must end with a terminal snapshot followed by channel close.
	var last Snapshot
	for {
		snap, ok := recvSnap(t, ch)
		if !ok {
			break
		}
		last = snap
	}
	if last.State != StateDone {
		t.Fatalf("final snapshot state = %q, want done: %+v", last.State, last)
	}
	if last.Result != "result" {
		t.Fatalf("final snapshot result = %v", last.Result)
	}
}

func TestWatchTerminalJobClosesImmediately(t *testing.T) {
	q := New(Options{Workers: 1})
	defer q.Close(context.Background())
	id, _ := q.Submit("instant", func(context.Context, func(Progress)) (any, error) { return 7, nil })
	waitState(t, q, id, StateDone)

	ch, stop, ok := q.Watch(id)
	if !ok {
		t.Fatal("Watch unknown")
	}
	defer stop()
	snap, ok := recvSnap(t, ch)
	if !ok || snap.State != StateDone {
		t.Fatalf("want immediate done snapshot, got ok=%v %+v", ok, snap)
	}
	if _, ok := recvSnap(t, ch); ok {
		t.Fatal("channel not closed after terminal snapshot")
	}
}

func TestWatchCancelledJobTerminates(t *testing.T) {
	q := New(Options{Workers: 1})
	defer q.Close(context.Background())
	started := make(chan struct{})
	id, _ := q.Submit("cancel-me", func(ctx context.Context, _ func(Progress)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	ch, stop, ok := q.Watch(id)
	if !ok {
		t.Fatal("Watch unknown")
	}
	defer stop()
	<-started
	q.Cancel(id)

	var last Snapshot
	for {
		snap, ok := recvSnap(t, ch)
		if !ok {
			break
		}
		last = snap
	}
	if last.State != StateCancelled {
		t.Fatalf("final state = %q, want cancelled", last.State)
	}
}

func TestWatchDetachIsIdempotent(t *testing.T) {
	q := New(Options{Workers: 1})
	defer q.Close(context.Background())
	release := make(chan struct{})
	id, _ := q.Submit("detach", func(ctx context.Context, _ func(Progress)) (any, error) {
		<-release
		return nil, nil
	})
	ch, stop, ok := q.Watch(id)
	if !ok {
		t.Fatal("Watch unknown")
	}
	recvSnap(t, ch) // initial snapshot
	stop()
	stop() // second call must be a no-op, not a double close
	if _, ok := recvSnap(t, ch); ok {
		t.Fatal("channel still open after detach")
	}
	close(release)
	waitState(t, q, id, StateDone)
}

func TestWatchUnknownJob(t *testing.T) {
	q := New(Options{})
	defer q.Close(context.Background())
	if _, _, ok := q.Watch("nope"); ok {
		t.Fatal("Watch of unknown id reported ok")
	}
}

func TestStatsLifecycleCounters(t *testing.T) {
	q := New(Options{Workers: 1, Capacity: 8})
	defer q.Close(context.Background())

	if st := q.Stats(); st != (Stats{}) {
		t.Fatalf("fresh queue stats = %+v, want zero", st)
	}

	okID, _ := q.Submit("ok", func(context.Context, func(Progress)) (any, error) { return nil, nil })
	failID, _ := q.Submit("fail", func(context.Context, func(Progress)) (any, error) {
		return nil, context.DeadlineExceeded
	})
	waitState(t, q, okID, StateDone)
	waitState(t, q, failID, StateFailed)

	// A queued job cancelled before running counts as cancelled.
	block := make(chan struct{})
	q.Submit("blocker", func(ctx context.Context, _ func(Progress)) (any, error) {
		<-block
		return nil, nil
	})
	queuedID, _ := q.Submit("queued-cancel", func(context.Context, func(Progress)) (any, error) { return nil, nil })
	q.Cancel(queuedID)
	close(block)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := q.Stats()
		if st.Submitted == 4 && st.Done == 2 && st.Failed == 1 && st.Cancelled == 1 &&
			st.Running == 0 && st.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}
