// Durable job state: the repository seam that lets a restarted coordinator
// remember what it was doing. A Store persists the durable subset of the
// queue's jobs — submissions, progress, results — as flat Records; the
// queue writes through on every lifecycle transition and replays the store
// at construction, so queued jobs resume, jobs that were mid-run re-run
// from scratch (job functions are deterministic searches, not ledgers),
// and finished results are still servable after a crash.
//
// Two implementations: MemStore (the default wiring in tests — same code
// path, no disk) and FileStore, an append-only JSON write-ahead log with
// last-wins replay and open-time compaction, which is what `-state-dir`
// selects in vpserve.
package jobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record is the durable form of one job. Payload is the job's rehydration
// input — enough for a Rehydrator to rebuild the Func after a restart —
// and Result is the finished job's return value, pre-encoded so a restored
// job serves the identical JSON it would have served before the crash.
type Record struct {
	ID         string          `json:"id"`
	Name       string          `json:"name"`
	Kind       string          `json:"kind"`
	Payload    json.RawMessage `json:"payload,omitempty"`
	State      State           `json:"state"`
	Progress   Progress        `json:"progress"`
	Result     json.RawMessage `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
	CreatedAt  time.Time       `json:"created_at"`
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
}

// Store persists job records. Implementations must be safe for concurrent
// use; Put and Delete are write-through (last write wins per ID), Load
// returns every live record, and Close makes every later write an error —
// the queue ignores write errors, so a closed store silently drops the
// zombie writes of a coordinator being torn down.
type Store interface {
	Put(rec Record) error
	Delete(id string) error
	Load() ([]Record, error)
	Close() error
}

// ErrStoreClosed is returned by writes to a closed store.
var ErrStoreClosed = errors.New("jobs: store closed")

// MemStore is an in-memory Store: the persistence code path without the
// disk. Useful in tests and as the explicit "no durability" wiring.
type MemStore struct {
	mu     sync.Mutex
	recs   map[string]Record
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{recs: make(map[string]Record)}
}

func (s *MemStore) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	s.recs[rec.ID] = rec
	return nil
}

func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	delete(s.recs, id)
	return nil
}

func (s *MemStore) Load() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		out = append(out, r)
	}
	sortRecords(out)
	return out, nil
}

func (s *MemStore) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return nil
}

// walOp is one line of the FileStore log.
type walOp struct {
	Op  string  `json:"op"` // "put" | "delete"
	ID  string  `json:"id,omitempty"`
	Rec *Record `json:"rec,omitempty"`
}

// FileStore is an append-only JSON-lines write-ahead log. Every Put and
// Delete appends one line and fsyncs; replay is last-wins per job ID, a
// truncated final line (torn write at crash) is discarded, and opening
// compacts the log — the replayed state is rewritten as pure puts and
// atomically renamed over the old file, so the log's size tracks the live
// job count, not the queue's lifetime churn.
type FileStore struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	closed bool
}

// walName is the log's filename inside the state dir.
const walName = "jobs.wal"

// OpenFileStore opens (creating if needed) the job WAL in dir.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: state dir: %w", err)
	}
	path := filepath.Join(dir, walName)
	recs, err := replayWAL(path)
	if err != nil {
		return nil, err
	}
	// Compact: rewrite the live set as puts, fsync, rename into place.
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: compacting store: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		rec := rec
		if err := json.NewEncoder(w).Encode(walOp{Op: "put", Rec: &rec}); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobs: compacting store: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: compacting store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: compacting store: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("jobs: compacting store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("jobs: compacting store: %w", err)
	}
	live, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening store: %w", err)
	}
	return &FileStore{path: path, f: live}, nil
}

// replayWAL reads the log into the last-wins live set, sorted by job ID.
// A missing file is an empty store; a torn final line is dropped.
func replayWAL(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: opening store: %w", err)
	}
	defer f.Close()
	live := make(map[string]Record)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // results can be large
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var op walOp
		if err := json.Unmarshal(line, &op); err != nil {
			// A torn tail from a crash mid-append; everything before it is
			// intact, so stop here rather than fail the whole store.
			break
		}
		switch op.Op {
		case "put":
			if op.Rec != nil {
				live[op.Rec.ID] = *op.Rec
			}
		case "delete":
			delete(live, op.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobs: reading store: %w", err)
	}
	out := make([]Record, 0, len(live))
	for _, r := range live {
		out = append(out, r)
	}
	sortRecords(out)
	return out, nil
}

func (s *FileStore) append(op walOp) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	line, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("jobs: encoding record: %w", err)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("jobs: appending record: %w", err)
	}
	return s.f.Sync()
}

func (s *FileStore) Put(rec Record) error {
	return s.append(walOp{Op: "put", Rec: &rec})
}

func (s *FileStore) Delete(id string) error {
	return s.append(walOp{Op: "delete", ID: id})
}

// Load replays the log from disk. Called once by the queue at construction.
func (s *FileStore) Load() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return replayWAL(s.path)
}

// Close makes every subsequent write fail — the in-process equivalent of
// the process dying: a queue still holding this store keeps running, but
// none of its writes land, so a successor opening the same state dir sees
// only what was durable at the moment of the "kill".
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// sortRecords orders by the numeric job ID ("j17" → 17), so replayed
// submissions re-enter the queue in their original order.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		return jobIDNum(recs[i].ID) < jobIDNum(recs[j].ID)
	})
}

// jobIDNum extracts the numeric part of a job ID; malformed IDs sort first.
func jobIDNum(id string) int {
	n := 0
	if len(id) < 2 || id[0] != 'j' {
		return -1
	}
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}
