package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches a terminal-or-wanted state.
func waitState(t *testing.T, q *Queue, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if s.State == want {
			return s
		}
		if s.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, s.State, s.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func newQueue(t *testing.T, opt Options) *Queue {
	t.Helper()
	q := New(opt)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := q.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return q
}

func TestSubmitPollResult(t *testing.T) {
	q := newQueue(t, Options{})
	id, err := q.Submit("double", func(ctx context.Context, report func(Progress)) (any, error) {
		report(Progress{Done: 1, Total: 2})
		report(Progress{Done: 2, Total: 2, Note: "finishing"})
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitState(t, q, id, StateDone)
	if s.Result != 42 || s.Error != "" {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Progress.Done != 2 || s.Progress.Note != "finishing" {
		t.Errorf("progress = %+v", s.Progress)
	}
	if s.StartedAt == nil || s.FinishedAt == nil || s.FinishedAt.Before(*s.StartedAt) {
		t.Errorf("timestamps = %+v / %+v", s.StartedAt, s.FinishedAt)
	}
	// List omits results (a listing must not embed every finished payload);
	// Get keeps them.
	list := q.List()
	if len(list) != 1 || list[0].ID != id || list[0].State != StateDone {
		t.Fatalf("List = %+v", list)
	}
	if list[0].Result != nil {
		t.Error("List embedded the job result; only Get should carry it")
	}
}

func TestFailureAndPanicCapture(t *testing.T) {
	q := newQueue(t, Options{})
	fid, _ := q.Submit("fails", func(context.Context, func(Progress)) (any, error) {
		return nil, errors.New("boom")
	})
	pid, _ := q.Submit("panics", func(context.Context, func(Progress)) (any, error) {
		panic("kaboom")
	})
	if s := waitState(t, q, fid, StateFailed); s.Error != "boom" {
		t.Errorf("failed error = %q", s.Error)
	}
	s := waitState(t, q, pid, StateFailed)
	if s.Error == "" || s.Result != nil {
		t.Errorf("panic snapshot = %+v", s)
	}
	// The worker survived the panic and still runs jobs.
	id, _ := q.Submit("after", func(context.Context, func(Progress)) (any, error) { return "ok", nil })
	waitState(t, q, id, StateDone)
}

func TestCancelRunning(t *testing.T) {
	q := newQueue(t, Options{Workers: 1})
	started := make(chan struct{})
	id, _ := q.Submit("slow", func(ctx context.Context, report func(Progress)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	if s, ok := q.Cancel(id); !ok || s.State == StateQueued {
		t.Fatalf("Cancel = %+v, %v", s, ok)
	}
	s := waitState(t, q, id, StateCancelled)
	if s.Result != nil {
		t.Errorf("cancelled job kept a result: %+v", s)
	}
}

func TestCancelQueued(t *testing.T) {
	q := newQueue(t, Options{Workers: 1})
	release := make(chan struct{})
	blocker, _ := q.Submit("blocker", func(ctx context.Context, _ func(Progress)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	waitState(t, q, blocker, StateRunning)
	queued, _ := q.Submit("queued", func(context.Context, func(Progress)) (any, error) {
		t.Error("cancelled queued job must never run")
		return nil, nil
	})
	s, ok := q.Cancel(queued)
	if !ok || s.State != StateCancelled {
		t.Fatalf("Cancel(queued) = %+v, %v", s, ok)
	}
	close(release)
	waitState(t, q, blocker, StateDone)
	// The cancelled job stays cancelled after the worker drains past it.
	if s, _ := q.Get(queued); s.State != StateCancelled {
		t.Errorf("state = %s after drain", s.State)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	q := newQueue(t, Options{Workers: 1, Capacity: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := func(ctx context.Context, _ func(Progress)) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	first, _ := q.Submit("running", blocker)
	<-started
	if _, err := q.Submit("pending", blocker); err != nil {
		t.Fatalf("capacity-1 queue rejected its first pending job: %v", err)
	}
	if _, err := q.Submit("overflow", blocker); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue = %v, want ErrQueueFull", err)
	}
	close(release)
	waitState(t, q, first, StateDone)
}

// TestCancelQueuedFreesCapacity: cancelling a queued job must release its
// pending slot immediately — a pile of cancelled jobs must not keep the
// queue answering ErrQueueFull while the workers are busy.
func TestCancelQueuedFreesCapacity(t *testing.T) {
	q := newQueue(t, Options{Workers: 1, Capacity: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	blocker, _ := q.Submit("running", func(ctx context.Context, _ func(Progress)) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	})
	<-started
	idle := func(context.Context, func(Progress)) (any, error) { return nil, nil }
	pending, err := q.Submit("pending", idle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("overflow", idle); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue not full: %v", err)
	}
	if s, ok := q.Cancel(pending); !ok || s.State != StateCancelled {
		t.Fatalf("Cancel = %+v, %v", s, ok)
	}
	// The slot is free right now — the worker is still blocked.
	replacement, err := q.Submit("replacement", idle)
	if err != nil {
		t.Fatalf("Submit after cancelling the queued job = %v, want success", err)
	}
	close(release)
	waitState(t, q, blocker, StateDone)
	waitState(t, q, replacement, StateDone)
	if s, _ := q.Get(pending); s.State != StateCancelled {
		t.Errorf("cancelled job state = %s", s.State)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	q := New(Options{})
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("late", func(context.Context, func(Progress)) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCloseCancelsRunning(t *testing.T) {
	q := New(Options{Workers: 1})
	started := make(chan struct{})
	id, _ := q.Submit("hang", func(ctx context.Context, _ func(Progress)) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatalf("Close did not drain: %v", err)
	}
	if s, _ := q.Get(id); s.State != StateCancelled {
		t.Errorf("state after Close = %s, want cancelled", s.State)
	}
}

func TestHistoryPruning(t *testing.T) {
	q := newQueue(t, Options{Workers: 2, KeepFinished: 3})
	var ids []string
	for i := 0; i < 8; i++ {
		id, err := q.Submit(fmt.Sprintf("job-%d", i), func(context.Context, func(Progress)) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		waitState(t, q, id, StateDone)
	}
	if got := len(q.List()); got > 4 { // 3 kept + possibly the one just added
		t.Errorf("retained %d jobs, want <= 4", got)
	}
	// The newest job always survives pruning.
	if _, ok := q.Get(ids[len(ids)-1]); !ok {
		t.Error("newest job was pruned")
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Error("oldest job survived pruning past the cap")
	}
}

func TestGetUnknown(t *testing.T) {
	q := newQueue(t, Options{})
	if _, ok := q.Get("j999"); ok {
		t.Error("Get of unknown id succeeded")
	}
	if _, ok := q.Cancel("j999"); ok {
		t.Error("Cancel of unknown id succeeded")
	}
}

// TestConcurrentSubmitters hammers the queue from many goroutines; run with
// -race this is the package's data-race proof.
func TestConcurrentSubmitters(t *testing.T) {
	q := newQueue(t, Options{Workers: 4, Capacity: 1024})
	var wg sync.WaitGroup
	ids := make([]string, 64)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := q.Submit("n", func(ctx context.Context, report func(Progress)) (any, error) {
				report(Progress{Done: i, Total: len(ids)})
				return i, nil
			})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, id := range ids {
		if id == "" {
			continue
		}
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		waitState(t, q, id, StateDone)
	}
}

// TestChurnStress hammers the queue from many goroutines — submit, cancel,
// poll — under -race, then proves the two invariants churn most easily
// breaks: (1) finished-history pruning never evicts a live (non-terminal)
// job, and (2) every capacity slot is restored afterwards, including slots
// freed by cancelling queued jobs.
func TestChurnStress(t *testing.T) {
	const (
		workers    = 3
		capacity   = 8
		keep       = 4 // tiny retention so pruning runs constantly
		goroutines = 8
		perG       = 40
	)
	q := newQueue(t, Options{Workers: workers, Capacity: capacity, KeepFinished: keep})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// completed closes when the job function returns; together
				// with Cancel's returned snapshot it lets the poller decide
				// whether a pruned id was legitimately terminal (fast jobs
				// are routinely pruned before their submitter polls — only
				// a job that was still live when it vanished is a bug).
				completed := make(chan struct{})
				id, err := q.Submit(fmt.Sprintf("churn-%d-%d", g, i),
					func(ctx context.Context, report func(Progress)) (any, error) {
						defer close(completed)
						report(Progress{Done: 1, Total: 1})
						select {
						case <-ctx.Done():
							return nil, ctx.Err()
						default:
							return i, nil
						}
					})
				if errors.Is(err, ErrQueueFull) {
					continue // backpressure is expected under churn
				}
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				// Every third job gets an immediate cancel — exercising the
				// queued-cancel slot release and the running-cancel signal.
				cancelledWhileQueued := false
				if i%3 == 0 {
					if snap, ok := q.Cancel(id); ok && snap.State.Terminal() {
						cancelledWhileQueued = true // fn will never run
					}
				}
				deadline := time.Now().Add(30 * time.Second)
				for {
					s, ok := q.Get(id)
					if !ok {
						// Vanished: only legal if it had reached a terminal
						// state first — its function returned, or the cancel
						// landed while it was still queued.
						if !cancelledWhileQueued {
							select {
							case <-completed:
							default:
								t.Errorf("job %s pruned while still live", id)
								return
							}
						}
						break
					}
					if s.State.Terminal() {
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("job %s stuck in %s", id, s.State)
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()

	// Drain: every submitted job settles terminal, so pending must be empty
	// and all capacity slots free again. Prove it by refilling the queue to
	// exactly its rated shape: `workers` running + `capacity` pending accept,
	// the next submission is backpressure.
	release := make(chan struct{})
	blocker := func(ctx context.Context, report func(Progress)) (any, error) {
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var blockers []string
	deadline := time.Now().Add(30 * time.Second)
	for len(blockers) < workers+capacity {
		id, err := q.Submit("refill", blocker)
		if errors.Is(err, ErrQueueFull) {
			// Workers may not have picked up earlier blockers yet; give the
			// scheduler a beat rather than failing spuriously.
			if time.Now().After(deadline) {
				t.Fatalf("capacity leak: only %d of %d blockers accepted", len(blockers), workers+capacity)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		blockers = append(blockers, id)
	}
	// With workers busy and the pending queue full, one more must bounce.
	if _, err := q.Submit("overflow", blocker); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	// Cancelling the queued blockers frees their slots immediately...
	for _, id := range blockers[workers:] {
		q.Cancel(id)
	}
	for i := 0; i < capacity; i++ {
		if _, err := q.Submit("reclaimed", blocker); err != nil {
			t.Fatalf("slot %d not reclaimed after cancel: %v", i, err)
		}
	}
	// ...and releasing the running ones lets Close drain cleanly (the
	// newQueue cleanup asserts that).
	close(release)
}
