package transformer

import (
	"math"

	"vocabpipe/internal/tensor"
)

// Attention is causal multi-head self-attention over a [T, h] sequence.
type Attention struct {
	Heads          int
	Wq, Wk, Wv, Wo *Linear
	q, k, v        *tensor.Matrix   // saved projections [T, h]
	attn           []*tensor.Matrix // per-head softmax(scores) [T, T]
}

// NewAttention builds the layer; h must be divisible by heads.
func NewAttention(rng *tensor.RNG, h, heads int) *Attention {
	if h%heads != 0 {
		panic("transformer: hidden not divisible by heads")
	}
	return &Attention{
		Heads: heads,
		Wq:    NewLinear(rng, h, h, 0.02),
		Wk:    NewLinear(rng, h, h, 0.02),
		Wv:    NewLinear(rng, h, h, 0.02),
		Wo:    NewLinear(rng, h, h, 0.02),
	}
}

// headView copies head hd's columns of m into a [T, dk] matrix.
func headView(m *tensor.Matrix, hd, dk int) *tensor.Matrix {
	return m.SliceCols(hd*dk, (hd+1)*dk)
}

// Forward computes causal attention.
func (a *Attention) Forward(x *tensor.Matrix) *tensor.Matrix {
	T, h := x.Rows, x.Cols
	dk := h / a.Heads
	a.q = a.Wq.Forward(x)
	a.k = a.Wk.Forward(x)
	a.v = a.Wv.Forward(x)
	a.attn = make([]*tensor.Matrix, a.Heads)
	concat := tensor.New(T, h)
	scale := 1 / math.Sqrt(float64(dk))
	for hd := 0; hd < a.Heads; hd++ {
		qh := headView(a.q, hd, dk)
		kh := headView(a.k, hd, dk)
		vh := headView(a.v, hd, dk)
		scores := tensor.MatMulT(qh, kh) // [T, T]
		for i := 0; i < T; i++ {
			row := scores.Row(i)
			for j := range row {
				if j > i {
					row[j] = math.Inf(-1)
				} else {
					row[j] *= scale
				}
			}
		}
		sm := scores.Softmax()
		a.attn[hd] = sm
		outH := tensor.MatMul(sm, vh) // [T, dk]
		for i := 0; i < T; i++ {
			copy(concat.Row(i)[hd*dk:(hd+1)*dk], outH.Row(i))
		}
	}
	return a.Wo.Forward(concat)
}

// Backward propagates gradients through attention.
func (a *Attention) Backward(dy *tensor.Matrix) *tensor.Matrix {
	T := dy.Rows
	h := a.q.Cols
	dk := h / a.Heads
	scale := 1 / math.Sqrt(float64(dk))

	dConcat := a.Wo.Backward(dy) // [T, h]
	dq := tensor.New(T, h)
	dkM := tensor.New(T, h)
	dv := tensor.New(T, h)
	for hd := 0; hd < a.Heads; hd++ {
		qh := headView(a.q, hd, dk)
		kh := headView(a.k, hd, dk)
		vh := headView(a.v, hd, dk)
		sm := a.attn[hd]
		dOutH := dConcat.SliceCols(hd*dk, (hd+1)*dk)

		// out = sm·vh  ⇒  dsm = dOutH·vhᵀ ; dvh = smᵀ·dOutH
		dsm := tensor.MatMulT(dOutH, vh)
		dvh := tensor.TMatMul(sm, dOutH)

		// softmax backward per row: ds = sm ⊙ (dsm − Σ dsm⊙sm)
		ds := tensor.New(T, T)
		for i := 0; i < T; i++ {
			smr := sm.Row(i)
			dsmr := dsm.Row(i)
			dot := 0.0
			for j := range smr {
				dot += smr[j] * dsmr[j]
			}
			out := ds.Row(i)
			for j := range smr {
				out[j] = smr[j] * (dsmr[j] - dot)
			}
		}
		// scores = scale · qh·khᵀ (lower triangle)
		ds.ScaleInPlace(scale)
		dqh := tensor.MatMul(ds, kh)  // [T, dk]
		dkh := tensor.TMatMul(ds, qh) // [T, dk]

		for i := 0; i < T; i++ {
			copy(dq.Row(i)[hd*dk:(hd+1)*dk], dqh.Row(i))
			copy(dkM.Row(i)[hd*dk:(hd+1)*dk], dkh.Row(i))
			copy(dv.Row(i)[hd*dk:(hd+1)*dk], dvh.Row(i))
		}
	}
	dx := a.Wq.Backward(dq)
	dx.AddInPlace(a.Wk.Backward(dkM))
	dx.AddInPlace(a.Wv.Backward(dv))
	return dx
}

// Block is a pre-norm transformer block: x + attn(ln1(x)), then
// x + mlp(ln2(x)).
type Block struct {
	LN1, LN2 *LayerNorm
	Attn     *Attention
	MLP      *MLP
}

// NewBlock builds a block for hidden size h and the given head count.
func NewBlock(rng *tensor.RNG, h, heads int) *Block {
	return &Block{
		LN1:  NewLayerNorm(h),
		LN2:  NewLayerNorm(h),
		Attn: NewAttention(rng, h, heads),
		MLP:  NewMLP(rng, h),
	}
}

// Forward applies the block.
func (b *Block) Forward(x *tensor.Matrix) *tensor.Matrix {
	y := x.Add(b.Attn.Forward(b.LN1.Forward(x)))
	return y.Add(b.MLP.Forward(b.LN2.Forward(y)))
}

// Backward propagates through the block.
func (b *Block) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dMid := dy.Add(b.LN2.Backward(b.MLP.Backward(dy)))
	return dMid.Add(b.LN1.Backward(b.Attn.Backward(dMid)))
}
