package transformer

import (
	"math"

	"vocabpipe/internal/tensor"
)

// ModelConfig sizes a small GPT.
type ModelConfig struct {
	Vocab, MaxSeq, Hidden, Layers, Heads int
}

// Model is the full decoder: token+position embedding, N blocks, final
// LayerNorm and an (untied) output projection handled by the caller — the
// embedding matrices are exposed so they can be run unpartitioned
// (vocab.Reference / vocab.ReferenceInput) or sharded (vocab.OutputShard /
// vocab.InputShard). This mirrors the paper's untied-embedding setting.
type Model struct {
	Cfg ModelConfig

	// Embed and Pos are the input layer weights; OutW is the output layer's
	// [V, h] matrix.
	Embed, Pos, OutW *tensor.Matrix
	GradEmbed        *tensor.Matrix
	GradPos          *tensor.Matrix
	GradOutW         *tensor.Matrix

	Blocks  []*Block
	FinalLN *LayerNorm
}

// NewModel initializes a model with deterministic weights.
func NewModel(rng *tensor.RNG, cfg ModelConfig) *Model {
	m := &Model{
		Cfg:       cfg,
		Embed:     tensor.Randn(rng, cfg.Vocab, cfg.Hidden, 0.02),
		Pos:       tensor.Randn(rng, cfg.MaxSeq, cfg.Hidden, 0.02),
		OutW:      tensor.Randn(rng, cfg.Vocab, cfg.Hidden, 0.02),
		GradEmbed: tensor.New(cfg.Vocab, cfg.Hidden),
		GradPos:   tensor.New(cfg.MaxSeq, cfg.Hidden),
		GradOutW:  tensor.New(cfg.Vocab, cfg.Hidden),
		FinalLN:   NewLayerNorm(cfg.Hidden),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, NewBlock(rng, cfg.Hidden, cfg.Heads))
	}
	return m
}

// ForwardTrunk runs the transformer trunk (blocks + final LayerNorm) on
// already-embedded activations.
func (m *Model) ForwardTrunk(x *tensor.Matrix) *tensor.Matrix {
	for _, b := range m.Blocks {
		x = b.Forward(x)
	}
	return m.FinalLN.Forward(x)
}

// BackwardTrunk propagates the trunk gradient back to the embedding output.
func (m *Model) BackwardTrunk(dy *tensor.Matrix) *tensor.Matrix {
	dx := m.FinalLN.Backward(dy)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dx = m.Blocks[i].Backward(dx)
	}
	return dx
}

// Params enumerates every trainable tensor as (value, grad) flat slices, for
// the optimizer and for gradient zeroing.
func (m *Model) Params() []Param {
	out := []Param{
		{m.Embed.Data, m.GradEmbed.Data},
		{m.Pos.Data, m.GradPos.Data},
		{m.OutW.Data, m.GradOutW.Data},
		{m.FinalLN.Gain, m.FinalLN.GradGain},
		{m.FinalLN.Bias, m.FinalLN.GradBias},
	}
	for _, b := range m.Blocks {
		out = append(out,
			Param{b.LN1.Gain, b.LN1.GradGain}, Param{b.LN1.Bias, b.LN1.GradBias},
			Param{b.LN2.Gain, b.LN2.GradGain}, Param{b.LN2.Bias, b.LN2.GradBias},
			Param{b.Attn.Wq.W.Data, b.Attn.Wq.GradW.Data}, Param{b.Attn.Wq.Bias, b.Attn.Wq.GradBias},
			Param{b.Attn.Wk.W.Data, b.Attn.Wk.GradW.Data}, Param{b.Attn.Wk.Bias, b.Attn.Wk.GradBias},
			Param{b.Attn.Wv.W.Data, b.Attn.Wv.GradW.Data}, Param{b.Attn.Wv.Bias, b.Attn.Wv.GradBias},
			Param{b.Attn.Wo.W.Data, b.Attn.Wo.GradW.Data}, Param{b.Attn.Wo.Bias, b.Attn.Wo.GradBias},
			Param{b.MLP.Up.W.Data, b.MLP.Up.GradW.Data}, Param{b.MLP.Up.Bias, b.MLP.Up.GradBias},
			Param{b.MLP.Down.W.Data, b.MLP.Down.GradW.Data}, Param{b.MLP.Down.Bias, b.MLP.Down.GradBias},
		)
	}
	return out
}

// ZeroGrads clears all accumulated gradients.
func (m *Model) ZeroGrads() {
	for _, p := range m.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// Param pairs a parameter slice with its gradient slice.
type Param struct {
	Value, Grad []float64
}

// Adam is the standard Adam optimizer.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	step                  int
	m, v                  [][]float64
}

// NewAdam creates an optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to params.
func (a *Adam) Step(params []Param) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			a.m[i] = make([]float64, len(p.Value))
			a.v[i] = make([]float64, len(p.Value))
		}
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			p.Value[j] -= a.LR * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.Eps)
		}
	}
}

// SGD is plain stochastic gradient descent (used by determinism tests where
// Adam's epsilon could mask tiny divergences).
type SGD struct{ LR float64 }

// Step applies one SGD update.
func (s *SGD) Step(params []Param) {
	for _, p := range params {
		for j, g := range p.Grad {
			p.Value[j] -= s.LR * g
		}
	}
}
