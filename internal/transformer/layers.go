// Package transformer implements a small GPT-style decoder in float64 with
// hand-derived backward passes: LayerNorm, causal multi-head self-attention,
// a GELU MLP, and Adam. It exists to reproduce Appendix E (Fig 17): training
// with the vocabulary-parallel input/output layers must match training with
// the unpartitioned reference step for step.
//
// Everything operates on [T, h] matrices (one sequence per microbatch, as in
// the paper's b=1 experiments). Clarity over speed: the models used by the
// convergence tests are tiny.
package transformer

import (
	"math"

	"vocabpipe/internal/tensor"
)

// Linear is y = x·Wᵀ + bias with W stored [out, in].
type Linear struct {
	W    *tensor.Matrix // [out, in]
	Bias []float64      // [out]

	GradW    *tensor.Matrix
	GradBias []float64

	x *tensor.Matrix // saved input
}

// NewLinear initializes a layer with N(0, std²) weights and zero bias.
func NewLinear(rng *tensor.RNG, in, out int, std float64) *Linear {
	return &Linear{
		W:        tensor.Randn(rng, out, in, std),
		Bias:     make([]float64, out),
		GradW:    tensor.New(out, in),
		GradBias: make([]float64, out),
	}
}

// Forward computes y = x·Wᵀ + bias and caches x for the backward pass.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	l.x = x
	y := tensor.MatMulT(x, l.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += l.Bias[j]
		}
	}
	return y
}

// Backward accumulates ∇W, ∇bias and returns ∇x.
func (l *Linear) Backward(dy *tensor.Matrix) *tensor.Matrix {
	l.GradW.AddInPlace(tensor.TMatMul(dy, l.x))
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			l.GradBias[j] += row[j]
		}
	}
	return tensor.MatMul(dy, l.W)
}

// LayerNorm normalizes each row to zero mean / unit variance, then applies
// gain and bias.
type LayerNorm struct {
	Gain, Bias []float64
	GradGain   []float64
	GradBias   []float64

	x       *tensor.Matrix
	xhat    *tensor.Matrix
	invStd  []float64
	epsilon float64
}

// NewLayerNorm creates a LayerNorm over dimension h.
func NewLayerNorm(h int) *LayerNorm {
	ln := &LayerNorm{
		Gain: make([]float64, h), Bias: make([]float64, h),
		GradGain: make([]float64, h), GradBias: make([]float64, h),
		epsilon: 1e-5,
	}
	for i := range ln.Gain {
		ln.Gain[i] = 1
	}
	return ln
}

// Forward normalizes rows of x.
func (ln *LayerNorm) Forward(x *tensor.Matrix) *tensor.Matrix {
	ln.x = x
	h := x.Cols
	ln.xhat = tensor.New(x.Rows, h)
	ln.invStd = make([]float64, x.Rows)
	y := tensor.New(x.Rows, h)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(h)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(h)
		inv := 1 / math.Sqrt(variance+ln.epsilon)
		ln.invStd[i] = inv
		xh := ln.xhat.Row(i)
		out := y.Row(i)
		for j, v := range row {
			xh[j] = (v - mean) * inv
			out[j] = xh[j]*ln.Gain[j] + ln.Bias[j]
		}
	}
	return y
}

// Backward returns ∇x and accumulates gain/bias gradients.
func (ln *LayerNorm) Backward(dy *tensor.Matrix) *tensor.Matrix {
	h := float64(dy.Cols)
	dx := tensor.New(dy.Rows, dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xh := ln.xhat.Row(i)
		// dxhat = dy * gain
		sumD, sumDX := 0.0, 0.0
		dxhat := make([]float64, dy.Cols)
		for j, v := range dyr {
			ln.GradGain[j] += v * xh[j]
			ln.GradBias[j] += v
			dxhat[j] = v * ln.Gain[j]
			sumD += dxhat[j]
			sumDX += dxhat[j] * xh[j]
		}
		inv := ln.invStd[i]
		out := dx.Row(i)
		for j := range dxhat {
			out[j] = inv * (dxhat[j] - sumD/h - xh[j]*sumDX/h)
		}
	}
	return dx
}

// gelu is the exact Gaussian error linear unit.
func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Erf(x/math.Sqrt2))
}

// geluGrad is its derivative.
func geluGrad(x float64) float64 {
	return 0.5*(1+math.Erf(x/math.Sqrt2)) + x*math.Exp(-x*x/2)/math.Sqrt(2*math.Pi)
}

// MLP is the transformer feed-forward block: Linear → GELU → Linear with the
// conventional 4x expansion.
type MLP struct {
	Up, Down *Linear
	pre      *tensor.Matrix // saved pre-activation
}

// NewMLP builds the block for hidden size h.
func NewMLP(rng *tensor.RNG, h int) *MLP {
	return &MLP{
		Up:   NewLinear(rng, h, 4*h, 0.02),
		Down: NewLinear(rng, 4*h, h, 0.02),
	}
}

// Forward applies the feed-forward block.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	m.pre = m.Up.Forward(x)
	act := tensor.New(m.pre.Rows, m.pre.Cols)
	for i, v := range m.pre.Data {
		act.Data[i] = gelu(v)
	}
	return m.Down.Forward(act)
}

// Backward propagates through the block.
func (m *MLP) Backward(dy *tensor.Matrix) *tensor.Matrix {
	dAct := m.Down.Backward(dy)
	for i := range dAct.Data {
		dAct.Data[i] *= geluGrad(m.pre.Data[i])
	}
	return m.Up.Backward(dAct)
}
