package transformer

import (
	"math"
	"testing"

	"vocabpipe/internal/tensor"
	"vocabpipe/internal/vocab"
)

// fdCheck compares an analytic gradient against central finite differences of
// a scalar loss function.
func fdCheck(t *testing.T, name string, value, grad []float64, loss func() float64, stride int) {
	t.Helper()
	const h = 1e-6
	for i := 0; i < len(value); i += stride {
		orig := value[i]
		value[i] = orig + h
		lp := loss()
		value[i] = orig - h
		lm := loss()
		value[i] = orig
		fd := (lp - lm) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("%s grad[%d] = %v, finite diff %v", name, i, grad[i], fd)
		}
	}
}

func TestLinearForwardKnown(t *testing.T) {
	l := &Linear{W: tensor.FromSlice(2, 3, []float64{1, 0, 0, 0, 1, 0}), Bias: []float64{10, 20},
		GradW: tensor.New(2, 3), GradBias: make([]float64, 2)}
	x := tensor.FromSlice(1, 3, []float64{1, 2, 3})
	y := l.Forward(x)
	if y.At(0, 0) != 11 || y.At(0, 1) != 22 {
		t.Fatalf("linear forward wrong: %v", y)
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear(rng, 4, 3, 0.5)
	x := tensor.Randn(rng, 5, 4, 1)
	target := tensor.Randn(rng, 5, 3, 1)
	loss := func() float64 {
		y := l.Forward(x)
		d := y.Sub(target)
		return 0.5 * d.Frobenius() * d.Frobenius()
	}
	y := l.Forward(x)
	dy := y.Sub(target)
	dx := l.Backward(dy)
	fdCheck(t, "linear.W", l.W.Data, l.GradW.Data, loss, 3)
	fdCheck(t, "linear.bias", l.Bias, l.GradBias, loss, 1)
	// dx check: perturb x.
	fdCheck(t, "linear.x", x.Data, dx.Data, loss, 4)
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := tensor.NewRNG(2)
	ln := NewLayerNorm(16)
	x := tensor.Randn(rng, 3, 16, 5)
	y := ln.Forward(x)
	for i := 0; i < y.Rows; i++ {
		mean, varr := 0.0, 0.0
		for _, v := range y.Row(i) {
			mean += v
		}
		mean /= 16
		for _, v := range y.Row(i) {
			varr += (v - mean) * (v - mean)
		}
		varr /= 16
		if math.Abs(mean) > 1e-10 || math.Abs(varr-1) > 1e-3 {
			t.Fatalf("row %d: mean %v var %v", i, mean, varr)
		}
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	ln := NewLayerNorm(6)
	// Non-trivial gain/bias.
	for i := range ln.Gain {
		ln.Gain[i] = 1 + 0.1*float64(i)
		ln.Bias[i] = 0.05 * float64(i)
	}
	x := tensor.Randn(rng, 4, 6, 2)
	target := tensor.Randn(rng, 4, 6, 1)
	loss := func() float64 {
		y := ln.Forward(x)
		d := y.Sub(target)
		return 0.5 * d.Frobenius() * d.Frobenius()
	}
	y := ln.Forward(x)
	dy := y.Sub(target)
	for i := range ln.GradGain {
		ln.GradGain[i], ln.GradBias[i] = 0, 0
	}
	dx := ln.Backward(dy)
	fdCheck(t, "ln.x", x.Data, dx.Data, loss, 1)
	fdCheck(t, "ln.gain", ln.Gain, ln.GradGain, loss, 1)
	fdCheck(t, "ln.bias", ln.Bias, ln.GradBias, loss, 1)
}

func TestGELUProperties(t *testing.T) {
	if gelu(0) != 0 {
		t.Fatalf("gelu(0) = %v", gelu(0))
	}
	if gelu(10) < 9.99 {
		t.Fatalf("gelu(10) should approach 10: %v", gelu(10))
	}
	if gelu(-10) > -1e-6 && gelu(-10) < -1 {
		t.Fatalf("gelu(-10) should approach 0: %v", gelu(-10))
	}
	// Derivative matches finite differences.
	for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
		fd := (gelu(x+1e-6) - gelu(x-1e-6)) / 2e-6
		if math.Abs(fd-geluGrad(x)) > 1e-6 {
			t.Fatalf("geluGrad(%v) = %v, fd %v", x, geluGrad(x), fd)
		}
	}
}

func TestMLPGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	mlp := NewMLP(rng, 4)
	x := tensor.Randn(rng, 3, 4, 1)
	target := tensor.Randn(rng, 3, 4, 1)
	loss := func() float64 {
		y := mlp.Forward(x)
		d := y.Sub(target)
		return 0.5 * d.Frobenius() * d.Frobenius()
	}
	y := mlp.Forward(x)
	dy := y.Sub(target)
	mlp.Up.GradW.Zero()
	mlp.Down.GradW.Zero()
	dx := mlp.Backward(dy)
	fdCheck(t, "mlp.x", x.Data, dx.Data, loss, 2)
	fdCheck(t, "mlp.up.W", mlp.Up.W.Data, mlp.Up.GradW.Data, loss, 7)
}

func TestAttentionCausality(t *testing.T) {
	// Changing a future token must not change past outputs.
	rng := tensor.NewRNG(5)
	a := NewAttention(rng, 8, 2)
	x := tensor.Randn(rng, 5, 8, 1)
	y1 := a.Forward(x).Clone()
	x2 := x.Clone()
	for j := 0; j < 8; j++ {
		x2.Set(4, j, x2.At(4, j)+10)
	}
	y2 := a.Forward(x2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(y1.At(i, j)-y2.At(i, j)) > 1e-12 {
				t.Fatalf("causality violated at token %d", i)
			}
		}
	}
	// But the final token's output must change.
	changed := false
	for j := 0; j < 8; j++ {
		if math.Abs(y1.At(4, j)-y2.At(4, j)) > 1e-9 {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("future token output unchanged — attention inert")
	}
}

func TestAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	a := NewAttention(rng, 6, 2)
	x := tensor.Randn(rng, 4, 6, 1)
	target := tensor.Randn(rng, 4, 6, 1)
	loss := func() float64 {
		y := a.Forward(x)
		d := y.Sub(target)
		return 0.5 * d.Frobenius() * d.Frobenius()
	}
	y := a.Forward(x)
	dy := y.Sub(target)
	a.Wq.GradW.Zero()
	a.Wk.GradW.Zero()
	a.Wv.GradW.Zero()
	a.Wo.GradW.Zero()
	dx := a.Backward(dy)
	fdCheck(t, "attn.x", x.Data, dx.Data, loss, 5)
	fdCheck(t, "attn.Wq", a.Wq.W.Data, a.Wq.GradW.Data, loss, 11)
	fdCheck(t, "attn.Wk", a.Wk.W.Data, a.Wk.GradW.Data, loss, 11)
	fdCheck(t, "attn.Wv", a.Wv.W.Data, a.Wv.GradW.Data, loss, 11)
	fdCheck(t, "attn.Wo", a.Wo.W.Data, a.Wo.GradW.Data, loss, 11)
}

func TestBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	b := NewBlock(rng, 4, 2)
	x := tensor.Randn(rng, 3, 4, 1)
	target := tensor.Randn(rng, 3, 4, 1)
	loss := func() float64 {
		y := b.Forward(x)
		d := y.Sub(target)
		return 0.5 * d.Frobenius() * d.Frobenius()
	}
	y := b.Forward(x)
	dy := y.Sub(target)
	dx := b.Backward(dy)
	fdCheck(t, "block.x", x.Data, dx.Data, loss, 3)
}

// TestEndToEndGradient checks the full model gradient (trunk + cross-entropy
// head) against finite differences — the strongest correctness statement the
// numeric substrate makes.
func TestEndToEndGradient(t *testing.T) {
	rng := tensor.NewRNG(8)
	cfg := ModelConfig{Vocab: 12, MaxSeq: 6, Hidden: 4, Layers: 2, Heads: 2}
	m := NewModel(rng, cfg)
	tokens := tensor.RandTokens(rng, 5, cfg.Vocab)
	labels := tensor.RandTokens(rng, 5, cfg.Vocab)

	forward := func() float64 {
		in := &vocab.ReferenceInput{W: m.Embed, Pos: m.Pos}
		x := m.ForwardTrunk(in.Forward(tokens))
		return vocab.NewReference(m.OutW).ForwardBackward(x, labels).Loss
	}

	m.ZeroGrads()
	in := &vocab.ReferenceInput{W: m.Embed, Pos: m.Pos}
	x := m.ForwardTrunk(in.Forward(tokens))
	res := vocab.NewReference(m.OutW).ForwardBackward(x, labels)
	m.GradOutW.AddInPlace(res.GradW)
	dEmbedOut := m.BackwardTrunk(res.GradX)
	ge, gp := in.Backward(tokens, dEmbedOut)
	m.GradEmbed.AddInPlace(ge)
	m.GradPos.AddInPlace(gp)

	fdCheck(t, "model.OutW", m.OutW.Data, m.GradOutW.Data, forward, 17)
	fdCheck(t, "model.Embed", m.Embed.Data, m.GradEmbed.Data, forward, 13)
	fdCheck(t, "model.Pos", m.Pos.Data, m.GradPos.Data, forward, 7)
	wq := m.Blocks[0].Attn.Wq
	fdCheck(t, "model.b0.Wq", wq.W.Data, wq.GradW.Data, forward, 5)
	up := m.Blocks[1].MLP.Up
	fdCheck(t, "model.b1.up", up.W.Data, up.GradW.Data, forward, 19)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||x - target||² — Adam should get close quickly.
	target := []float64{1, -2, 3}
	x := []float64{0, 0, 0}
	grad := make([]float64, 3)
	p := []Param{{x, grad}}
	opt := NewAdam(0.1)
	for step := 0; step < 500; step++ {
		for i := range x {
			grad[i] = x[i] - target[i]
		}
		opt.Step(p)
	}
	for i := range x {
		if math.Abs(x[i]-target[i]) > 1e-2 {
			t.Fatalf("Adam did not converge: %v", x)
		}
	}
}

func TestSGDStep(t *testing.T) {
	x := []float64{1}
	g := []float64{2}
	(&SGD{LR: 0.5}).Step([]Param{{x, g}})
	if x[0] != 0 {
		t.Fatalf("SGD step wrong: %v", x[0])
	}
}

func TestZeroGrads(t *testing.T) {
	rng := tensor.NewRNG(9)
	m := NewModel(rng, ModelConfig{Vocab: 8, MaxSeq: 4, Hidden: 4, Layers: 1, Heads: 1})
	m.GradEmbed.Set(0, 0, 5)
	m.Blocks[0].MLP.Up.GradW.Set(0, 0, 7)
	m.ZeroGrads()
	if m.GradEmbed.At(0, 0) != 0 || m.Blocks[0].MLP.Up.GradW.At(0, 0) != 0 {
		t.Fatalf("ZeroGrads missed a gradient")
	}
}

func TestModelDeterministicInit(t *testing.T) {
	cfg := ModelConfig{Vocab: 8, MaxSeq: 4, Hidden: 4, Layers: 1, Heads: 1}
	a := NewModel(tensor.NewRNG(42), cfg)
	b := NewModel(tensor.NewRNG(42), cfg)
	if a.Embed.MaxAbsDiff(b.Embed) != 0 || a.OutW.MaxAbsDiff(b.OutW) != 0 {
		t.Fatalf("same seed must give identical init")
	}
}
