package tensor

import "math"

// RNG is a small deterministic PRNG (splitmix64 core with a Box–Muller
// Gaussian) so experiments are reproducible across platforms without pulling
// in math/rand's global state.
type RNG struct {
	state uint64
	spare float64
	has   bool
}

// NewRNG seeds a generator. Distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed ^ 0x9E3779B97F4A7C15} }

// Uint64 returns the next raw 64-bit value (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box–Muller, cached pair).
func (r *RNG) Norm() float64 {
	if r.has {
		r.has = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 1e-300 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.has = true
	return mag * math.Cos(2*math.Pi*v)
}

// Randn fills a new rows×cols matrix with N(0, std²) samples.
func Randn(rng *RNG, rows, cols int, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Norm() * std
	}
	return m
}

// RandTokens returns n token ids uniform over [0, vocab).
func RandTokens(rng *RNG, n, vocab int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(vocab)
	}
	return out
}
