package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func approxEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*scale
}

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Shape(); r != 3 || c != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", r, c)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatalf("New matrix not zeroed")
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestFromSliceRoundTrip(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice indexing wrong: %v", m)
	}
	m.Set(1, 0, 9)
	if d[3] != 9 {
		t.Fatalf("FromSlice should alias input data")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for bad data length")
		}
	}()
	FromSlice(2, 3, []float64{1, 2})
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatalf("Clone aliased the original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	sum := a.Add(b)
	if sum.At(0, 0) != 6 || sum.At(1, 1) != 12 {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := b.Sub(a)
	if diff.At(0, 0) != 4 || diff.At(1, 1) != 4 {
		t.Fatalf("Sub wrong: %v", diff)
	}
	sc := a.Scale(2)
	if sc.At(1, 0) != 6 {
		t.Fatalf("Scale wrong: %v", sc)
	}
	a.AddInPlace(b)
	if a.At(0, 1) != 8 {
		t.Fatalf("AddInPlace wrong: %v", a)
	}
}

func TestHadamard(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	h := a.Hadamard(b)
	want := []float64{4, 10, 18}
	for i, v := range want {
		if h.Data[i] != v {
			t.Fatalf("Hadamard[%d] = %v, want %v", i, h.Data[i], v)
		}
	}
}

func TestScaleRows(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.ScaleRows([]float64{10, 100})
	if r.At(0, 1) != 20 || r.At(1, 0) != 300 {
		t.Fatalf("ScaleRows wrong: %v", r)
	}
}

func TestTransposeKnown(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape wrong")
	}
	if tr.At(0, 1) != 4 || tr.At(2, 0) != 3 {
		t.Fatalf("T values wrong: %v", tr)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("MatMul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(1)
	a := Randn(rng, 5, 7, 1)
	b := Randn(rng, 9, 7, 1)
	got := MatMulT(a, b)
	want := MatMul(a, b.T())
	if got.MaxAbsDiff(want) > eps {
		t.Fatalf("MatMulT differs from MatMul(a, b.T()) by %g", got.MaxAbsDiff(want))
	}
}

func TestTMatMulMatchesExplicitTranspose(t *testing.T) {
	rng := NewRNG(2)
	a := Randn(rng, 6, 4, 1)
	b := Randn(rng, 6, 5, 1)
	got := TMatMul(a, b)
	want := MatMul(a.T(), b)
	if got.MaxAbsDiff(want) > eps {
		t.Fatalf("TMatMul differs from MatMul(a.T(), b) by %g", got.MaxAbsDiff(want))
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	v := []float64{1, 0, -1}
	got := MatVec(a, v)
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MatVec wrong: %v", got)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on mismatched inner dims")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// Large enough to exercise the parallel path; compare against a serial
// reference computed with the same row-major accumulation order.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(3)
	a := Randn(rng, 120, 90, 1)
	b := Randn(rng, 90, 110, 1)
	got := MatMul(a, b)
	want := New(120, 110)
	for i := 0; i < 120; i++ {
		for k := 0; k < 90; k++ {
			av := a.At(i, k)
			for j := 0; j < 110; j++ {
				want.Data[i*110+j] += av * b.At(k, j)
			}
		}
	}
	if got.MaxAbsDiff(want) != 0 {
		t.Fatalf("parallel matmul not bit-identical to serial: %g", got.MaxAbsDiff(want))
	}
}

func TestRowMax(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 9, 2, -5, -1, -7})
	mx := m.RowMax()
	if mx[0] != 9 || mx[1] != -1 {
		t.Fatalf("RowMax wrong: %v", mx)
	}
}

func TestRowMaxEmptyIsNegInf(t *testing.T) {
	m := New(2, 0)
	mx := m.RowMax()
	if !math.IsInf(mx[0], -1) {
		t.Fatalf("RowMax of empty row should be -Inf, got %v", mx[0])
	}
}

func TestRowSumExpAndExpShifted(t *testing.T) {
	m := FromSlice(1, 3, []float64{0, math.Log(2), math.Log(3)})
	s := m.RowSumExp([]float64{0})
	if !approxEqual(s[0], 6, 1e-12) {
		t.Fatalf("RowSumExp = %v, want 6", s[0])
	}
	e := m.ExpShifted([]float64{math.Log(2)})
	if !approxEqual(e.At(0, 1), 1, 1e-12) {
		t.Fatalf("ExpShifted wrong: %v", e)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := NewRNG(4)
	m := Randn(rng, 8, 33, 5)
	sm := m.Softmax()
	for i := 0; i < sm.Rows; i++ {
		s := 0.0
		for _, v := range sm.Row(i) {
			s += v
			if v < 0 {
				t.Fatalf("softmax produced negative value")
			}
		}
		if !approxEqual(s, 1, 1e-12) {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	rng := NewRNG(5)
	m := Randn(rng, 4, 17, 3)
	shifted := m.Clone()
	for i := range shifted.Data {
		shifted.Data[i] += 123.456
	}
	if m.Softmax().MaxAbsDiff(shifted.Softmax()) > 1e-12 {
		t.Fatalf("softmax not invariant to constant shift")
	}
}

func TestSoftmaxLargeLogitsStable(t *testing.T) {
	m := FromSlice(1, 3, []float64{1000, 1001, 999})
	sm := m.Softmax()
	for _, v := range sm.Row(0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed on large logits: %v", sm.Row(0))
		}
	}
}

func TestSliceColsRows(t *testing.T) {
	m := FromSlice(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	c := m.SliceCols(1, 3)
	if c.Cols != 2 || c.At(0, 0) != 2 || c.At(1, 1) != 7 {
		t.Fatalf("SliceCols wrong: %v", c)
	}
	r := m.SliceRows(1, 2)
	if r.Rows != 1 || r.At(0, 0) != 5 {
		t.Fatalf("SliceRows wrong: %v", r)
	}
}

func TestFrobeniusAndSum(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if m.Frobenius() != 5 {
		t.Fatalf("Frobenius = %v, want 5", m.Frobenius())
	}
	if m.Sum() != 7 {
		t.Fatalf("Sum = %v, want 7", m.Sum())
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{1.5, 2})
	if a.MaxAbsDiff(b) != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", a.MaxAbsDiff(b))
	}
}

// --- property-based tests ---

// smallMat generates a bounded random matrix from quick's raw values.
func smallMat(seed uint64, rows, cols int) *Matrix {
	rng := NewRNG(seed)
	return Randn(rng, rows, cols, 1)
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed uint64, r8, c8 uint8) bool {
		rows := int(r8%7) + 1
		cols := int(c8%7) + 1
		m := smallMat(seed, rows, cols)
		return m.T().T().MaxAbsDiff(m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulAssociativeApprox(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := Randn(rng, 4, 5, 1)
		b := Randn(rng, 5, 6, 1)
		c := Randn(rng, 6, 3, 1)
		ab_c := MatMul(MatMul(a, b), c)
		a_bc := MatMul(a, MatMul(b, c))
		return ab_c.MaxAbsDiff(a_bc) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := Randn(rng, 3, 4, 1)
		b := Randn(rng, 4, 5, 1)
		c := Randn(rng, 4, 5, 1)
		lhs := MatMul(a, b.Add(c))
		rhs := MatMul(a, b).Add(MatMul(a, c))
		return lhs.MaxAbsDiff(rhs) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSoftmaxPreservedUnderColumnSharding(t *testing.T) {
	// Softmax computed on the full matrix must equal softmax reassembled from
	// per-shard exps normalized by global max/sum — the identity at the heart
	// of the paper's Algorithm 1.
	f := func(seed uint64, pRaw uint8) bool {
		rng := NewRNG(seed)
		p := int(pRaw%4) + 1
		cols := p * (int(seed%5) + 2)
		m := Randn(rng, 3, cols, 4)
		full := m.Softmax()

		mx := m.RowMax()
		sum := m.RowSumExp(mx)
		per := cols / p
		for shard := 0; shard < p; shard++ {
			part := m.SliceCols(shard*per, (shard+1)*per)
			e := part.ExpShifted(mx)
			for i := 0; i < e.Rows; i++ {
				for j := 0; j < e.Cols; j++ {
					want := full.At(i, shard*per+j)
					got := e.At(i, j) / sum[i]
					if math.Abs(want-got) > 1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("RNG not deterministic at step %d", i)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	rng := NewRNG(7)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := rng.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Norm variance = %v, want ~1", variance)
	}
}

func TestRandTokensInRange(t *testing.T) {
	rng := NewRNG(8)
	toks := RandTokens(rng, 1000, 50)
	for _, tk := range toks {
		if tk < 0 || tk >= 50 {
			t.Fatalf("token %d out of range", tk)
		}
	}
}
