package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of output elements below which matmuls run
// single-threaded; spawning goroutines for tiny products costs more than it
// saves.
const parallelThreshold = 64 * 64

// MatMul returns a×b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.Cols, b.Rows))
	}
	out := New(a.Rows, b.Cols)
	parallelRows(a.Rows, out.Rows*out.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulT returns a×bᵀ. This is the natural layout for logits Y = X·Wᵀ where
// W is stored [V/p × h].
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", a.Cols, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	parallelRows(a.Rows, out.Rows*out.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				s := 0.0
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	})
	return out
}

// TMatMul returns aᵀ×b. This is the natural layout for weight gradients
// ∇W = (softmax−G)ᵀ·X without materializing the transpose.
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Cols, b.Cols)
	// Partition by output row (a column index) to keep writes disjoint.
	parallelRows(a.Cols, out.Rows*out.Cols, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			orow := out.Row(j)
			for i := 0; i < a.Rows; i++ {
				av := a.Data[i*a.Cols+j]
				if av == 0 {
					continue
				}
				brow := b.Row(i)
				for k, bv := range brow {
					orow[k] += av * bv
				}
			}
		}
	})
	return out
}

// MatVec returns a×v as a vector of length a.Rows.
func MatVec(a *Matrix, v []float64) []float64 {
	if a.Cols != len(v) {
		panic(fmt.Sprintf("tensor: MatVec dims %d vs %d", a.Cols, len(v)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for k, av := range row {
			s += av * v[k]
		}
		out[i] = s
	}
	return out
}

// parallelRows splits the row range [0,n) across workers when the output is
// large enough. Each worker owns a contiguous row block so summation order
// within a row is identical regardless of parallelism.
func parallelRows(n, outElems int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if outElems < parallelThreshold || workers <= 1 || n <= 1 {
		fn(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
