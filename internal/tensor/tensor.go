// Package tensor provides dense float64 matrices and the handful of
// linear-algebra and reduction primitives needed by the vocabulary-parallel
// output layer and the from-scratch transformer used in the numeric
// experiments. It deliberately stays small: row-major storage, explicit
// shapes, no broadcasting, no views that alias in surprising ways.
//
// All operations are deterministic; the parallel matmul partitions work by
// output row so the floating-point summation order never depends on the
// number of workers.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src)
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add returns m + o elementwise.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] + o.Data[i]
	}
	return r
}

// AddInPlace accumulates o into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	m.mustSameShape(o)
	for i := range m.Data {
		m.Data[i] += o.Data[i]
	}
}

// Sub returns m - o elementwise.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] - o.Data[i]
	}
	return r
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = s * m.Data[i]
	}
	return r
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Hadamard returns the elementwise product m ⊙ o.
func (m *Matrix) Hadamard(o *Matrix) *Matrix {
	m.mustSameShape(o)
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] * o.Data[i]
	}
	return r
}

// ScaleRows multiplies row i of m by s[i], returning a new matrix.
func (m *Matrix) ScaleRows(s []float64) *Matrix {
	if len(s) != m.Rows {
		panic(fmt.Sprintf("tensor: ScaleRows needs %d factors, got %d", m.Rows, len(s)))
	}
	r := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		f := s[i]
		row := m.Row(i)
		dst := r.Row(i)
		for j, v := range row {
			dst[j] = f * v
		}
	}
	return r
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	r := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			r.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return r
}

// RowMax returns per-row maxima. Rows of width zero yield -Inf, matching the
// identity element of max so sharded reductions compose correctly.
func (m *Matrix) RowMax() []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		best := math.Inf(-1)
		for _, v := range m.Row(i) {
			if v > best {
				best = v
			}
		}
		out[i] = best
	}
	return out
}

// RowSumExp returns per-row sums of exp(x - shift[i]).
func (m *Matrix) RowSumExp(shift []float64) []float64 {
	if len(shift) != m.Rows {
		panic("tensor: RowSumExp shift length mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		sh := shift[i]
		for _, v := range m.Row(i) {
			s += math.Exp(v - sh)
		}
		out[i] = s
	}
	return out
}

// ExpShifted returns exp(m[i][j] - shift[i]) as a new matrix.
func (m *Matrix) ExpShifted(shift []float64) *Matrix {
	if len(shift) != m.Rows {
		panic("tensor: ExpShifted shift length mismatch")
	}
	r := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		sh := shift[i]
		row := m.Row(i)
		dst := r.Row(i)
		for j, v := range row {
			dst[j] = math.Exp(v - sh)
		}
	}
	return r
}

// Softmax returns the row-wise safe softmax of m.
func (m *Matrix) Softmax() *Matrix {
	mx := m.RowMax()
	e := m.ExpShifted(mx)
	for i := 0; i < e.Rows; i++ {
		row := e.Row(i)
		s := 0.0
		for _, v := range row {
			s += v
		}
		inv := 1.0 / s
		for j := range row {
			row[j] *= inv
		}
	}
	return e
}

// MaxAbsDiff returns max |m - o| over all elements.
func (m *Matrix) MaxAbsDiff(o *Matrix) float64 {
	m.mustSameShape(o)
	worst := 0.0
	for i := range m.Data {
		d := math.Abs(m.Data[i] - o.Data[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// SliceCols returns a copy of columns [lo, hi).
func (m *Matrix) SliceCols(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %d cols", lo, hi, m.Cols))
	}
	r := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(r.Row(i), m.Row(i)[lo:hi])
	}
	return r
}

// SliceRows returns a copy of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	r := New(hi-lo, m.Cols)
	copy(r.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return r
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
