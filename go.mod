module vocabpipe

go 1.24
